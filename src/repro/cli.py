"""Command-line interface: ``repro`` (or ``python -m repro``).

Subcommands:

* ``repro list`` — registered workloads, by suite.
* ``repro profile WORKLOAD`` — run a workload and print per-routine
  performance points under the chosen metric, with fitted cost models.
* ``repro characterize WORKLOAD`` — the Section 4.2 workload metrics:
  input volume, richness, thread/external split.
* ``repro overhead`` — the Table 1 tool-comparison harness.
* ``repro communicate WORKLOAD`` — the routine-granularity shared-memory
  communication matrix (the paper's Section 6 future-work tool).
* ``repro report WORKLOAD`` — everything at once: profiles, fits,
  metrics, diagnostics and communication channels.
* ``repro trace WORKLOAD`` — dump or save the event trace (text or
  binary).
* ``repro diagnose WORKLOAD`` — cost-variance diagnostics: routines whose
  measured input sizes look untrustworthy (Section 2.1's indicator).
* ``repro doctor --trace PATH`` — integrity-check a binary trace and
  optionally recover its longest valid prefix.
* ``repro doctor --store DIR`` — audit a whole trace store (corrupt
  entries, orphaned shards, stale version tags); ``--recover``
  quarantines every bad file so reruns see clean misses.
* ``repro serve`` — the crash-safe sweep service: journaled
  coordinator + leased worker processes over one trace store.
* ``repro submit`` — send a sweep job to a running coordinator,
  optionally waiting for completion (exit 0 complete / 3 degraded).
* ``repro jobs`` — inspect a live coordinator over HTTP, or replay a
  journal offline for post-mortem job state.
* ``repro trace-export --job ID`` — merge a job's per-process span
  sidecars (coordinator, workers, partition processes) into one
  Perfetto-viewable Chrome trace, clocks aligned via the lease-time
  handshake.
* ``repro top --url URL`` — live terminal view of a running
  coordinator: per-worker lease state, rates from counter deltas,
  retry counters, histogram p50/p99.
* ``repro stats WORKLOAD`` — run a workload under full telemetry and
  print the metrics registry (table, ``--json`` or ``--prom``
  Prometheus text), optionally saving a Perfetto-viewable span timeline
  with ``--trace-out``.
* ``repro sweep`` — the workload×tool×scale matrix over a
  content-addressed trace store: record once, replay from cache, merge
  per-scale profile shards into per-routine cost models.

All ``--json`` outputs are strict JSON: non-finite floats (e.g. the
``nan`` exponent of a degenerate cost trend) are serialised as
``null``, never as the invalid ``NaN`` literal.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.analysis.communication import analyze_communication
from repro.analysis.costfunc import best_fit
from repro.analysis.metrics import (
    dynamic_input_volume,
    induced_first_read_split,
    profile_richness,
    routine_input_shares,
)
from repro.core import (
    EXTERNAL_ONLY_POLICY,
    FULL_POLICY,
    RMS_POLICY,
    profile_events,
)
from repro.core.events import describe
from repro.tools import (
    DEFAULT_ENGINE,
    DEFAULT_TOOLS,
    ENGINES,
    measure_workload,
    suite_summary,
)
from repro.workloads.registry import REGISTRY, SUITES, get_workload, suite

POLICIES = {
    "rms": RMS_POLICY,
    "drms": FULL_POLICY,
    "external": EXTERNAL_ONLY_POLICY,
}

# doctor prints a per-section salvage line; cap the listing so a huge
# multi-section trace doesn't flood the terminal.
_DOCTOR_SECTION_LIMIT = 20


def _run_workload(name: str, threads: int, scale: int, registry=None):
    machine = get_workload(name).build(threads=threads, scale=scale)
    if registry is not None:
        machine.enable_metrics(registry)
    machine.run()
    return machine


def _print_metrics(registry, stream=None) -> None:
    """Render a registry as an aligned table.

    Counters and gauges print as ``key  value`` rows; histograms are
    summarised as ``count / p50 / p90 / p99`` derived from their log2
    buckets instead of dumping raw per-bucket rows.
    """
    _print_flat_metrics(registry.as_dict(), stream=stream)


def _print_flat_metrics(data, stream=None) -> None:
    from repro.obs import histogram_summaries_from_flat

    if not data:
        print("(no metrics recorded)", file=stream)
        return
    summaries = histogram_summaries_from_flat(data, qs=(0.5, 0.9, 0.99))
    hidden = set()
    for base in summaries:
        name = base.split("{", 1)[0]
        labels = base[len(name):]
        inner = labels[1:-1] if labels else ""
        for key in data:
            key_name = key.split("{", 1)[0]
            if key_name in (name + "_count", name + "_sum") and (
                key.endswith(labels) if labels else "{" not in key
            ):
                hidden.add(key)
            elif key_name == name + "_bucket" and inner in key:
                hidden.add(key)
    scalars = {k: v for k, v in data.items() if k not in hidden}
    if scalars:
        width = max(len(key) for key in scalars)
        for key, value in scalars.items():
            print(f"{key:<{width}}  {value}", file=stream)
    if summaries:
        width = max(len(base) for base in summaries)
        print(
            f"{'-- histogram --':<{width}}  "
            f"{'count':>8}  {'p50':>10}  {'p90':>10}  {'p99':>10}",
            file=stream,
        )
        for base, row in sorted(summaries.items()):
            print(
                f"{base:<{width}}  {row['count']:>8}  "
                f"{row['p50']:>10.0f}  {row['p90']:>10.0f}  "
                f"{row['p99']:>10.0f}",
                file=stream,
            )


def _emit_registry(registry, args) -> None:
    """Shared ``--json`` / ``--prom`` / table output for a registry.

    Both flags take an optional FILE; bare ``--json`` / ``--prom``
    (or ``-``) write to stdout."""

    def write(text: str, dest: str, label: str) -> None:
        if dest == "-":
            sys.stdout.write(text)
        else:
            with open(dest, "w") as handle:
                handle.write(text)
            print(f"{label} written to {dest}", file=sys.stderr)

    if args.json is not None:
        from repro.core.serialize import dumps_strict

        payload = {
            "workload": args.workload,
            "threads": args.threads,
            "scale": args.scale,
            "metrics": registry.as_dict(),
        }
        write(dumps_strict(payload, indent=2) + "\n", args.json, "metrics JSON")
    if args.prom is not None:
        write(registry.to_prometheus(), args.prom, "Prometheus exposition")
    if args.json is None and args.prom is None:
        _print_metrics(registry)


def cmd_stats(args) -> int:
    """Run one workload under full telemetry and report the registry."""
    from repro.core.timestamping import DrmsProfiler
    from repro.obs import MetricsRegistry, SpanTracer

    name = args.workload_opt or args.workload
    if not name:
        print("stats: a workload is required (positional or --workload)",
              file=sys.stderr)
        return 2
    args.workload = name

    registry = MetricsRegistry()
    tracer = SpanTracer(process_name=f"repro stats {name}")
    with tracer.span("build", track="main", workload=name):
        machine = get_workload(name).build(
            threads=args.threads, scale=args.scale
        )
    if args.faults is not None:
        from repro.vm.faults import FaultPlan

        machine.set_fault_plan(FaultPlan(seed=args.faults))
    machine.enable_metrics(registry, tracer=tracer)
    profiler = DrmsProfiler(
        policy=POLICIES[args.metric],
        counter_limit=args.counter_limit,
        keep_activations=False,
        metrics=registry,
    )
    superops_fused = [0]
    trace_totals = {"bytes": 0, "events": 0}

    def counting(sink):
        # Stats is the full-telemetry command: fold the v3 wire size of
        # every batch into the encoding-efficiency gauge.
        def wrapped(batch):
            trace_totals["bytes"] += len(batch.to_bytes())
            trace_totals["events"] += len(batch)
            sink(batch)

        return wrapped

    if args.engine == "columnar":
        from repro.core.events import count_superops, fuse_batch

        def sink(batch):
            fused = fuse_batch(batch)
            superops_fused[0] += count_superops(fused)[0]
            profiler.consume_columnar(fused)

        machine.set_batch_sink(counting(sink))
    elif args.engine == "scalar":

        def sink(batch):
            consume = profiler.consume
            for event in batch.iter_events():
                consume(event)

        machine.set_batch_sink(counting(sink))
    else:
        machine.set_batch_sink(counting(profiler.consume_batch))
    with tracer.span("run", track="main", workload=name):
        machine.run()
    with tracer.span("publish", track="main"):
        machine.publish_metrics(registry)
        profiler.publish_metrics(registry)
        registry.gauge("kernel.superops_fused").set(superops_fused[0])
        if trace_totals["events"]:
            registry.gauge("trace.bytes_per_event").set(
                round(trace_totals["bytes"] / trace_totals["events"], 3)
            )
        from repro.tools.pool import active_segments, pool_stats

        pstats = pool_stats()
        registry.gauge("pool.tasks_reused").set(pstats["tasks_reused"])
        registry.gauge("shm.segments_active").set(active_segments())
    _emit_registry(registry, args)
    if args.url:
        from urllib import error

        try:
            payload = _service_get(args.url, "/metrics.json")
        except (error.URLError, OSError) as exc:
            print(
                f"cannot reach coordinator at {args.url}: {exc}",
                file=sys.stderr,
            )
            return 1
        print(f"-- service metrics ({args.url}) --")
        _print_flat_metrics(payload.get("metrics", {}))
    if args.trace_out:
        tracer.save(args.trace_out)
        print(
            f"span trace written to {args.trace_out} "
            "(open in https://ui.perfetto.dev)",
            file=sys.stderr,
        )
    return 0


def cmd_list(_args) -> int:
    for tag in SUITES:
        print(f"{tag}:")
        for workload in suite(tag):
            print(f"  {workload.name}")
    return 0


def cmd_profile(args) -> int:
    machine = _run_workload(args.workload, args.threads, args.scale)
    report = profile_events(machine.trace, policy=POLICIES[args.metric])
    if args.json:
        from repro.core.serialize import dumps_report

        with open(args.json, "w") as handle:
            handle.write(dumps_report(report, indent=2))
        print(f"profile written to {args.json}", file=sys.stderr)
    merged = report.by_routine()
    names = [args.routine] if args.routine else sorted(merged)
    print(
        f"{args.workload}: {len(machine.trace)} events, "
        f"{machine.total_blocks} blocks, metric = {args.metric}"
    )
    for name in names:
        if name not in merged:
            print(f"  no profile for routine {name!r}", file=sys.stderr)
            return 1
        profile = merged[name]
        plot = profile.worst_case_plot()
        line = f"  {name}: calls={profile.calls} points={len(plot)}"
        if len(plot) >= 2:
            fit = best_fit(plot)
            line += f" fit={fit.model} (R^2={fit.r_squared:.3f})"
        print(line)
        if args.points:
            for size, cost in plot[: args.points]:
                print(f"      n={size:<10} worst-case cost={cost}")
    return 0


def cmd_characterize(args) -> int:
    machine = _run_workload(args.workload, args.threads, args.scale)
    drms_report = profile_events(machine.trace)
    rms_report = profile_events(machine.trace, policy=RMS_POLICY)
    thread_pct, external_pct = induced_first_read_split(drms_report)
    volume = dynamic_input_volume(rms_report, drms_report)
    richness = profile_richness(rms_report, drms_report)
    print(f"{args.workload}:")
    print(f"  dynamic input volume: {volume:.3f}")
    print(
        f"  induced first-reads: {thread_pct:.1f}% thread / "
        f"{external_pct:.1f}% external"
    )
    positive = {r: v for r, v in richness.items() if v > 0}
    print(f"  routines with positive profile richness: {len(positive)}")
    for routine, value in sorted(positive.items(), key=lambda kv: -kv[1])[:10]:
        print(f"    {routine}: +{value:.1f}")
    shares = routine_input_shares(drms_report)
    print("  top dynamic-input routines:")
    for share in shares[:10]:
        print(
            f"    {share.routine}: {share.thread_pct:.0f}% thread / "
            f"{share.external_pct:.0f}% external "
            f"({share.first_reads} first-reads)"
        )
    return 0


def cmd_overhead(args) -> int:
    names = [w.name for w in suite(args.suite)]
    if args.benchmarks:
        names = [n for n in names if n in args.benchmarks]
    if not names:
        print(
            f"no workloads in suite {args.suite!r} match"
            f" {args.benchmarks}",
            file=sys.stderr,
        )
        return 2

    def make_builder(workload):
        def build():
            machine = workload.build(threads=args.threads, scale=args.scale)
            if args.faults is not None:
                # A fresh plan per build: fault decisions are a pure
                # function of (seed, decision index), so every build
                # sees the identical fault schedule.
                from repro.vm.faults import FaultPlan

                machine.set_fault_plan(FaultPlan(seed=args.faults))
            return machine

        return build

    registry = None
    tracer = None
    if getattr(args, "metrics", False):
        from repro.obs import MetricsRegistry, SpanTracer

        registry = MetricsRegistry()
        tracer = SpanTracer(process_name=f"repro overhead {args.suite}")

    measurements = []
    for name in names:
        workload = get_workload(name)
        measurements.append(
            measure_workload(
                name,
                make_builder(workload),
                repeats=args.repeats,
                parallel=args.parallel,
                metrics=registry,
                tracer=tracer,
                engine=args.engine,
                partitions=args.partitions,
            )
        )
        print(f"  measured {name}", file=sys.stderr)
    try:
        summary = suite_summary(measurements)
    except ValueError as exc:
        print(f"overhead: {exc}", file=sys.stderr)
        return 1
    if args.json:
        from repro.core.serialize import dumps_strict

        payload = {
            "suite": args.suite,
            "threads": args.threads,
            "scale": args.scale,
            "repeats": args.repeats,
            "parallel": args.parallel,
            "faults": args.faults,
            "engine": args.engine,
            "partitions": args.partitions,
            "summary": summary,
            "excluded": sorted(
                {t for m in measurements for t in m.excluded_tools}
            ),
            "workloads": [
                {
                    "workload": m.workload,
                    "native_time": m.native_time,
                    "native_cells": m.native_cells,
                    "record_time": m.record_time,
                    "trace_events": m.trace_events,
                    "trace_bytes": m.trace_bytes,
                    "bytes_per_event": (
                        round(m.trace_bytes / m.trace_events, 3)
                        if m.trace_bytes and m.trace_events
                        else None
                    ),
                    "superops_fused": m.superops_fused,
                    "partitions": m.partitions,
                    "partition_reason": m.partition_reason,
                    "excluded": m.excluded_tools,
                    "degradations": [
                        {
                            "stage": d.stage,
                            "tool": d.tool,
                            "attempt": d.attempt,
                            "reason": d.reason,
                            "action": d.action,
                        }
                        for d in m.degradations
                    ],
                    "tools": {
                        t.tool: {
                            "wall_time": t.wall_time,
                            "replay_time": t.replay_time,
                            "slowdown": t.slowdown,
                            "space_cells": t.space_cells,
                            "space_overhead": t.space_overhead,
                            "events": t.events,
                        }
                        for t in m.tools.values()
                    },
                }
                for m in measurements
            ],
        }
        if registry is not None:
            payload["metrics"] = registry.as_dict()
        with open(args.json, "w") as handle:
            handle.write(dumps_strict(payload, indent=2))
        print(f"measurements written to {args.json}", file=sys.stderr)
    tool_names = [t for t in DEFAULT_TOOLS if t in summary]
    print(f"{'tool':>12} {'slowdown':>10} {'space':>8}")
    for tool in tool_names:
        row = summary[tool]
        print(
            f"{tool:>12} {row['slowdown']:>9.2f}x {row['space_overhead']:>7.2f}x"
        )
    degradations = [d for m in measurements for d in m.degradations]
    if degradations:
        print(f"{len(degradations)} degradation(s):", file=sys.stderr)
        for d in degradations:
            print(
                f"  [{d.stage}] {d.tool}: {d.reason} -> {d.action}",
                file=sys.stderr,
            )
    if registry is not None:
        print("-- metrics --")
        _print_metrics(registry)
    return 0


def cmd_sweep(args) -> int:
    """Run the cached workload×tool×scale sweep matrix."""
    from repro.core.serialize import dumps_strict
    from repro.sweep import SweepConfig, run_sweep

    if args.workloads:
        unknown = [name for name in args.workloads if name not in REGISTRY]
        if unknown:
            print(f"unknown workloads: {', '.join(unknown)}", file=sys.stderr)
            return 2
        names = list(args.workloads)
    else:
        names = [w.name for w in suite(args.suite)]
    if not names:
        print(f"no workloads in suite {args.suite!r}", file=sys.stderr)
        return 2

    registry = None
    tracer = None
    if args.metrics:
        from repro.obs import MetricsRegistry, SpanTracer

        registry = MetricsRegistry()
        tracer = SpanTracer(process_name="repro sweep")

    config = SweepConfig(
        workloads=tuple(names),
        scales=tuple(args.scales),
        store_root=args.store,
        threads=args.threads,
        tools=tuple(args.tools) if args.tools else tuple(DEFAULT_TOOLS),
        repeats=args.repeats,
        parallel=args.parallel,
        fault_seed=args.faults,
        reuse_measurements=not args.remeasure,
        engine=args.engine,
        partitions=args.partitions,
    )
    try:
        result = run_sweep(config, metrics=registry, tracer=tracer)
    except ValueError as exc:
        print(f"sweep: {exc}", file=sys.stderr)
        return 2

    report = result.report_dict()
    cache = report["cache"]
    print(
        f"sweep: {len(report['cells'])} cell(s) over "
        f"{len(names)} workload(s) x scales {list(args.scales)} — "
        f"wall {result.wall_time:.2f}s, cache {cache['hits']} hit / "
        f"{cache['misses']} miss (hit rate {cache['hit_rate']:.0%})"
    )
    for workload in sorted(result.trends):
        print(f"  {workload}:")
        drms_trends = result.trends[workload]["drms"]
        rms_trends = result.trends[workload]["rms"]
        for routine, row in drms_trends.items():
            if row["model"] is None:
                print(
                    f"    {routine}: {row['points']} point(s) — "
                    "not enough distinct sizes to fit"
                )
                continue
            rms_row = rms_trends.get(routine) or {}
            rms_model = rms_row.get("model") or "-"
            print(
                f"    {routine}: drms {row['model']} "
                f"(R^2={row['r_squared']:.3f}) vs rms {rms_model}"
            )
    if result.degradations:
        print(f"{len(result.degradations)} degradation(s):", file=sys.stderr)
        for d in result.degradations:
            print(
                f"  [{d.stage}] {d.tool}: {d.reason} -> {d.action}",
                file=sys.stderr,
            )
    if registry is not None:
        print("-- metrics --")
        _print_metrics(registry)
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(dumps_strict(report, indent=2) + "\n")
        print(f"sweep report written to {args.json}", file=sys.stderr)
    return 0


def cmd_communicate(args) -> int:
    machine = _run_workload(args.workload, args.threads, args.scale)
    analyzer = analyze_communication(
        machine.trace, include_kernel=not args.no_kernel
    )
    print(
        f"{args.workload}: {analyzer.total_cells()} communicated cells "
        f"over {len(analyzer.routine_matrix())} routine channels"
    )
    print(f"{'producer':>24} {'consumer':>24} {'cells':>7}")
    for edge in analyzer.edges()[: args.limit]:
        print(f"{edge.producer:>24} {edge.consumer:>24} {edge.cells:>7}")
    fan_out = analyzer.fan_out()
    if fan_out:
        widest = max(fan_out, key=fan_out.get)
        print(
            f"widest producer: {widest} "
            f"(feeds {fan_out[widest]} routines)"
        )
    return 0


def cmd_report(args) -> int:
    from repro.analysis.report import workload_report

    machine = _run_workload(args.workload, args.threads, args.scale)
    print(workload_report(machine.trace, title=args.workload))
    return 0


def cmd_trace(args) -> int:
    if args.binary and not args.save:
        print("--binary requires --save FILE", file=sys.stderr)
        return 2
    registry = None
    if args.metrics:
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
    machine = _run_workload(
        args.workload, args.threads, args.scale, registry=registry
    )
    if registry is not None:
        machine.publish_metrics(registry)
        print("-- metrics --", file=sys.stderr)
        _print_metrics(registry, stream=sys.stderr)
    if args.save:
        if args.binary:
            from repro.core.tracefile import save_trace_binary

            trace = machine.trace
            if args.engine == "columnar":
                # The columnar engine stores run superops: stride-1
                # same-thread runs collapse to one row each, so the
                # binary is smaller and replays straight into the
                # columnar kernel.  iter_events() expands them, so any
                # consumer still sees the identical logical stream.
                from repro.core.events import (
                    EventBatch,
                    count_superops,
                    encode_events,
                    fuse_batch,
                )

                if not isinstance(trace, EventBatch):
                    trace = encode_events(trace)
                trace = fuse_batch(trace)
                runs, covered = count_superops(trace)
                print(
                    f"fused {covered} event(s) into {runs} run superop(s)",
                    file=sys.stderr,
                )
            with open(args.save, "wb") as handle:
                written = save_trace_binary(trace, handle)
        else:
            from repro.core.tracefile import save_trace

            with open(args.save, "w") as handle:
                written = save_trace(machine.trace, handle)
        print(f"{written} events written to {args.save}", file=sys.stderr)
        return 0
    for event in machine.trace[: args.limit]:
        print(describe(event))
    remaining = len(machine.trace) - args.limit
    if remaining > 0:
        print(f"... ({remaining} more events)")
    return 0


def cmd_diagnose(args) -> int:
    from repro.analysis.variance import suspicion_report

    machine = _run_workload(args.workload, args.threads, args.scale)
    report = profile_events(machine.trace, policy=POLICIES[args.metric])
    flagged = suspicion_report(report, spread_threshold=args.spread)
    if not flagged:
        print(
            f"{args.workload}: no suspicious cost variance under "
            f"{args.metric} (all input sizes look trustworthy)"
        )
        return 0
    print(
        f"{args.workload}: {len(flagged)} routine(s) with suspicious "
        f"cost variance under {args.metric} — their input sizes are "
        "probably under-measured (Section 2.1 indicator):"
    )
    for routine, points in flagged.items():
        worst = points[0]
        print(
            f"  {routine}: {len(points)} point(s); worst at n={worst.input_size} "
            f"({worst.calls} calls, cost {worst.min_cost}..{worst.max_cost})"
        )
    return 0


def _save_doctor_flight(args, facts, reason) -> None:
    """Dump the doctor's findings through the flight recorder.

    ``facts`` is a list of ``(kind, fields)`` notes fed into the ring;
    when ``reason`` is non-empty (corruption was detected) the ring is
    dumped as a ``flight-recorder`` instant, so the written Chrome
    trace carries the last-moments evidence alongside the notes."""
    if not getattr(args, "flight_out", None):
        return
    from repro.obs import SpanTracer
    from repro.obs.distributed import FlightRecorder, flight_dump

    tracer = SpanTracer(process_name="repro doctor")
    FlightRecorder().attach(tracer)
    for kind, fields in facts:
        tracer.flight.note(kind, **fields)
    if reason:
        flight_dump(tracer, reason)
    tracer.save(args.flight_out)
    print(
        f"doctor flight recording written to {args.flight_out}",
        file=sys.stderr,
    )


def _doctor_store(args) -> int:
    """Audit (and optionally recover) a whole trace store."""
    from repro.sweep import TraceStore

    store = TraceStore(args.store)
    audit = store.audit()
    print(f"store:     {audit.root}")
    print(f"traces:    {audit.traces} ({len(audit.corrupt_traces)} corrupt)")
    print(f"metas:     {audit.metas} ({len(audit.corrupt_metas)} corrupt)")
    print(
        f"shards:    {audit.shards} ({len(audit.corrupt_shards)} corrupt, "
        f"{len(audit.stale_shards)} stale)"
    )
    print(f"orphans:   {len(audit.orphan_sidecars)} sidecar(s) without a trace")
    print(f"tmp files: {len(audit.tmp_files)} leftover")
    for label, paths in (
        ("corrupt trace", audit.corrupt_traces),
        ("corrupt meta", audit.corrupt_metas),
        ("corrupt shard", audit.corrupt_shards),
        ("stale shard", audit.stale_shards),
        ("orphan sidecar", audit.orphan_sidecars),
    ):
        for path in paths[:_DOCTOR_SECTION_LIMIT]:
            print(f"  {label}: {os.path.relpath(path, audit.root)}")
    corrupt_total = (
        len(audit.corrupt_traces)
        + len(audit.corrupt_metas)
        + len(audit.corrupt_shards)
    )
    _save_doctor_flight(
        args,
        [
            (
                "store-audit",
                {
                    "store": audit.root,
                    "traces": audit.traces,
                    "shards": audit.shards,
                    "corrupt": corrupt_total,
                    "stale": len(audit.stale_shards),
                    "orphans": len(audit.orphan_sidecars),
                },
            )
        ],
        ""
        if audit.clean
        else f"doctor: store {audit.root} needs recovery "
        f"({corrupt_total} corrupt file(s))",
    )
    if audit.clean:
        print("status:    clean")
        return 0
    if args.recover:
        moved = store.quarantine(audit)
        print(
            f"quarantined {len(moved)} file(s) under "
            f"{os.path.join(audit.root, 'quarantine')}; removed "
            f"{len(audit.tmp_files)} tmp file(s)"
        )
        if store.audit().clean:
            print("status:    clean after recovery")
            return 0
        print("status:    STILL DIRTY after recovery")
        return 1
    print("status:    NEEDS RECOVERY (re-run with --recover)")
    return 1


def cmd_doctor(args) -> int:
    """Integrity-check a binary trace or a whole trace store."""
    from repro.core.events import scan_batch_bytes

    if bool(args.trace) == bool(args.store):
        print(
            "doctor: exactly one of --trace or --store is required",
            file=sys.stderr,
        )
        return 2
    if args.store:
        return _doctor_store(args)
    if args.recover is True:
        print(
            "doctor: --recover needs an OUT path in --trace mode",
            file=sys.stderr,
        )
        return 2
    try:
        with open(args.trace, "rb") as handle:
            data = handle.read()
    except OSError as exc:
        print(f"cannot read {args.trace}: {exc}", file=sys.stderr)
        return 2
    scan = scan_batch_bytes(data)
    print(f"trace:     {args.trace} ({len(data)} bytes)")
    print(f"format:    v{scan.version}" if scan.version else "format:    unknown")
    print(f"declared:  {scan.declared_events} events")
    print(f"recovered: {scan.events_loaded} events "
          f"({scan.sections_valid} valid section(s), "
          f"{scan.valid_bytes} clean bytes)")
    from repro.core.tracefile import trace_section_stats

    section_stats = {s.index: s for s in trace_section_stats(data)}
    shown = scan.section_events[:_DOCTOR_SECTION_LIMIT]
    for index, count in enumerate(shown):
        stat = section_stats.get(index)
        detail = ""
        if stat is not None:
            enc = f"v{stat.version}" + ("+zlib" if stat.compressed else "")
            detail = (
                f" — {enc}, {stat.stored_bytes}/{stat.raw_bytes} B "
                f"({stat.ratio:.1%}), {stat.bytes_per_event:.2f} B/event"
            )
        print(f"  section {index:>3}: {count} event(s) salvaged{detail}")
    if len(scan.section_events) > len(shown):
        print(f"  ... ({len(scan.section_events) - len(shown)} more sections)")
    if section_stats:
        stored = sum(s.stored_bytes for s in section_stats.values())
        raw = sum(s.raw_bytes for s in section_stats.values())
        events_total = sum(s.events for s in section_stats.values())
        if events_total:
            print(
                f"encoding:  {stored}/{raw} payload bytes "
                f"({stored / raw:.1%} of row format), "
                f"{stored / events_total:.2f} B/event"
            )
    print(f"names:     {len(scan.batch.names)} interned")
    _save_doctor_flight(
        args,
        [
            (
                "trace-scan",
                {
                    "trace": args.trace,
                    "bytes": len(data),
                    "declared": scan.declared_events,
                    "recovered": scan.events_loaded,
                    "valid_bytes": scan.valid_bytes,
                    "intact": scan.intact,
                },
            )
        ],
        ""
        if scan.intact
        else f"doctor: corrupt trace {args.trace}: {scan.error}",
    )
    if scan.intact:
        print("status:    intact")
    else:
        where = (
            f" in section {scan.error_section}"
            if scan.error_section is not None
            else ""
        )
        print(f"status:    CORRUPT{where} — {scan.error}")
    if args.partitions is not None:
        # A torn trace still plans: the planner degrades to a single
        # partition over the valid prefix with the damage in
        # ``reason``, so doctor can always show what a partitioned
        # replay would do with this file.
        from repro.core.tracefile import TraceFormatError, plan_partitions
        from repro.tools.partition import resolve_partitions

        try:
            plan = plan_partitions(data, resolve_partitions(args.partitions))
        except TraceFormatError as exc:
            plan = None
            print(f"-- partition plan: unavailable — {exc}")
        if plan is not None:
            print(f"-- partition plan ({plan.requested}-way requested) --")
            print(
                f"sections:  {plan.total_sections} "
                f"({plan.safe_boundaries} safe depth-zero boundar"
                f"{'y' if plan.safe_boundaries == 1 else 'ies'})"
            )
            if plan.reason is not None:
                print(f"splittable: no — {plan.reason}")
            else:
                print(
                    f"splittable: yes — {len(plan.partitions)} "
                    f"partition(s), imbalance {plan.imbalance:.1%}"
                )
                if plan.carried:
                    print(
                        f"carried:   {plan.carried} mid-activation "
                        f"carry(ies) across cuts"
                    )
            for part in plan.partitions:
                carry = ""
                if part.carry_in:
                    depths = ", ".join(
                        f"T{thread}x{len(acts)}"
                        for thread, acts in part.carry_in
                    )
                    carry = f", carry-in [{depths}]"
                print(
                    f"  partition {part.index}: bytes [{part.start}, "
                    f"{part.end}) — {part.sections} section(s), "
                    f"{part.events} event(s){carry}"
                )
    if args.recover:
        from repro.core.tracefile import save_trace_binary

        with open(args.recover, "wb") as handle:
            written = save_trace_binary(scan.batch, handle)
        print(f"recovered prefix ({written} events) written to {args.recover}")
    return 0 if scan.intact else 1


def cmd_serve(args) -> int:
    """Run the journaled sweep coordinator plus local worker processes.

    Exit code 0 when every job completed, 3 when any job degraded
    (cells exhausted their retries).  Without ``--until-idle`` the
    service runs until interrupted.
    """
    import multiprocessing
    import time

    from repro.obs import MetricsRegistry, SpanTracer
    from repro.service import Coordinator
    from repro.service.httpd import serve_http
    from repro.service.worker import worker_entry

    registry = MetricsRegistry()
    spans_dir = None
    tracer = None
    if not args.no_trace:
        spans_dir = args.spans_dir or (args.journal + ".spans")
        tracer = SpanTracer(process_name="coordinator")
    coordinator = Coordinator(
        args.store,
        args.journal,
        lease_timeout=args.lease_timeout,
        max_retries=args.max_retries,
        metrics=registry,
        fsync=not args.no_fsync,
        tracer=tracer,
        spans_dir=spans_dir,
    )
    server, base_url = serve_http(
        coordinator, host=args.host, port=args.port, registry=registry
    )
    replay = coordinator.replay_stats
    print(
        f"serving on {base_url} — journal {args.journal} "
        f"({replay.records} record(s) replayed"
        + (f", {replay.torn_tail_bytes} torn tail byte(s) dropped"
           if replay.torn_tail_bytes else "")
        + (f"), spans in {spans_dir}" if spans_dir else ")"),
        flush=True,
    )
    workers = {}
    for index in range(args.workers):
        name = f"worker-{index}"
        proc = multiprocessing.Process(
            target=worker_entry,
            args=(base_url, name),
            kwargs={
                "poll_interval": args.poll,
                "stop_when_idle": args.until_idle,
            },
            name=name,
            daemon=True,
        )
        proc.start()
        workers[name] = proc
    try:
        while True:
            time.sleep(args.poll)
            coordinator.tick()
            for name, proc in list(workers.items()):
                if proc.is_alive():
                    continue
                del workers[name]
                if proc.exitcode != 0:
                    requeued = coordinator.note_worker_dead(
                        name, f"worker exited with code {proc.exitcode}"
                    )
                    print(
                        f"{name} died (exit {proc.exitcode}); requeued "
                        f"{requeued} lease(s)",
                        file=sys.stderr,
                        flush=True,
                    )
            if args.until_idle and coordinator.all_idle() and not workers:
                # Keep serving briefly so clients polling --wait can
                # still fetch the terminal job state.
                time.sleep(max(args.linger, 0.0))
                break
    except KeyboardInterrupt:
        pass
    finally:
        for proc in workers.values():
            proc.terminate()
        for proc in workers.values():
            proc.join(timeout=5)
        server.shutdown()
        coordinator.close()
    states = [job["state"] for job in coordinator.jobs_snapshot()]
    print(f"serve: exiting ({', '.join(states) or 'no jobs'})", flush=True)
    return 3 if "degraded" in states else 0


def _service_get(url: str, path: str):
    import json as jsonlib
    from urllib import request

    with request.urlopen(url.rstrip("/") + path, timeout=10) as resp:
        return jsonlib.loads(resp.read().decode("utf-8"))


def _service_post(url: str, path: str, payload):
    import json as jsonlib
    from urllib import request

    req = request.Request(
        url.rstrip("/") + path,
        data=jsonlib.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with request.urlopen(req, timeout=10) as resp:
        return jsonlib.loads(resp.read().decode("utf-8"))


def _print_job_cells(report) -> None:
    for cell in report["cells"]:
        extra = ""
        if cell["state"] == "done":
            extra = (
                f" attempt {cell['attempts']} by {cell['completed_by']}"
            )
            if cell["duplicate_completions"]:
                extra += f" (+{cell['duplicate_completions']} duplicate)"
        elif cell["state"] == "failed":
            extra = f" after {cell['attempts']} attempt(s)"
        print(f"  {cell['cell']}: {cell['state']}{extra}")
    for d in report["degradations"]:
        print(
            f"  [{d['stage']}] {d['unit']}: {d['reason']} -> {d['action']}",
            file=sys.stderr,
        )


def cmd_submit(args) -> int:
    """Submit a sweep job to a running coordinator.

    Exit codes: 0 complete, 1 coordinator unreachable / wait timed
    out, 2 spec rejected, 3 job finished degraded.
    """
    import time
    from urllib import error

    from repro.core.serialize import dumps_strict

    spec = {
        "workloads": args.workloads,
        "scales": args.scales,
        "threads": args.threads,
        "tools": args.tools or None,
        "repeats": args.repeats,
        "engine": args.engine,
        "fault_seed": args.faults,
        "partitions": args.partitions,
    }
    try:
        job_id = _service_post(args.url, "/submit", spec)["job"]
    except error.HTTPError as exc:
        body = exc.read().decode("utf-8", "replace").strip()
        print(f"submit rejected ({exc.code}): {body}", file=sys.stderr)
        return 2
    except (error.URLError, OSError) as exc:
        print(
            f"cannot reach coordinator at {args.url}: {exc}", file=sys.stderr
        )
        return 1
    print(f"submitted {job_id}")
    if not args.wait:
        return 0
    deadline = time.monotonic() + args.timeout
    report = None
    failures = 0
    while time.monotonic() < deadline:
        try:
            report = _service_get(args.url, f"/jobs/{job_id}")
            failures = 0
        except (error.URLError, OSError) as exc:
            failures += 1
            if failures >= 8:
                print(
                    f"coordinator unreachable after {failures} polls: {exc}",
                    file=sys.stderr,
                )
                return 1
            time.sleep(1.0)
            continue
        if report["state"] != "running":
            break
        time.sleep(max(args.poll, 0.05))
    if report is None or report["state"] == "running":
        print(
            f"timed out after {args.timeout:g}s waiting for {job_id}",
            file=sys.stderr,
        )
        return 1
    counts = report["counts"]
    print(
        f"{job_id}: {report['state']} — {counts['done']} done, "
        f"{counts['failed']} failed"
    )
    _print_job_cells(report)
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(dumps_strict(report, indent=2) + "\n")
        print(f"job report written to {args.json}", file=sys.stderr)
    return 0 if report["state"] == "complete" else 3


def cmd_jobs(args) -> int:
    """Inspect coordinator state — live over HTTP, or offline from the
    journal (pure replay; the journal is never written)."""
    from urllib import error

    from repro.core.serialize import dumps_strict

    if bool(args.url) == bool(args.journal):
        print(
            "jobs: exactly one of --url or --journal is required",
            file=sys.stderr,
        )
        return 2
    if args.url:
        try:
            if args.job:
                report = _service_get(args.url, f"/jobs/{args.job}")
                snapshot = None
            else:
                snapshot = _service_get(args.url, "/jobs")["jobs"]
                report = None
        except error.HTTPError as exc:
            print(f"coordinator error ({exc.code})", file=sys.stderr)
            return 1
        except (error.URLError, OSError) as exc:
            print(
                f"cannot reach coordinator at {args.url}: {exc}",
                file=sys.stderr,
            )
            return 1
    else:
        from repro.service import Coordinator

        coordinator = Coordinator(
            args.store or "",
            args.journal,
            fsync=False,
            readonly=True,
        )
        if args.job:
            try:
                report = coordinator.job_report(
                    args.job, include_trends=bool(args.store)
                )
            except KeyError as exc:
                print(f"jobs: {exc.args[0]}", file=sys.stderr)
                return 1
            snapshot = None
        else:
            snapshot = coordinator.jobs_snapshot()
            report = None
    if report is not None:
        if args.json:
            with open(args.json, "w") as handle:
                handle.write(dumps_strict(report, indent=2) + "\n")
            print(f"job report written to {args.json}", file=sys.stderr)
        counts = report["counts"]
        print(
            f"{report['job']}: {report['state']} — "
            f"{counts['done']} done, {counts['failed']} failed, "
            f"{counts['pending']} pending, {counts['leased']} leased"
        )
        _print_job_cells(report)
        return 0
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(dumps_strict({"jobs": snapshot}, indent=2) + "\n")
        print(f"jobs written to {args.json}", file=sys.stderr)
    if not snapshot:
        print("(no jobs)")
        return 0
    for job in snapshot:
        cells = job["cells"]
        print(
            f"{job['job']}: {job['state']} — "
            f"{cells['done']}/{sum(cells.values())} cells done "
            f"({cells['failed']} failed) over "
            f"{len(job['workloads'])} workload(s)"
        )
    return 0


def cmd_trace_export(args) -> int:
    """Merge a job's span sidecars into one Perfetto-viewable trace.

    Offline: replays the journal (read-only) to resolve the job's
    ``trace_id``, then merges every contributing sidecar under the
    spans directory.  Exit 0 valid, 1 schema problems, 2 unknown job
    or no trace context recorded.
    """
    from repro.core.serialize import dumps_strict
    from repro.obs.distributed import merge_job_trace, validate_chrome_trace
    from repro.service import Coordinator

    spans_dir = args.spans_dir or (args.journal + ".spans")
    coordinator = Coordinator(
        args.store or "", args.journal, fsync=False, readonly=True
    )
    try:
        report = coordinator.job_report(args.job, include_trends=False)
    except KeyError:
        print(
            f"trace-export: unknown job {args.job!r} in {args.journal}",
            file=sys.stderr,
        )
        return 2
    trace_id = report.get("trace_id", "")
    if not trace_id:
        print(
            f"trace-export: job {args.job} has no trace context "
            "(journal predates tracing?)",
            file=sys.stderr,
        )
        return 2
    doc = merge_job_trace(
        spans_dir,
        trace_id=trace_id,
        job=args.job,
        extra_metadata={
            "journal": args.journal,
            "job_state": report["state"],
        },
    )
    out = args.out or f"{args.job}.trace.json"
    with open(out, "w") as handle:
        handle.write(dumps_strict(doc) + "\n")
    meta = doc["metadata"]
    processes = meta["processes"]
    print(
        f"{args.job} [{trace_id}]: {len(doc['traceEvents'])} event(s) "
        f"from {len(processes)} process(es) -> {out}"
    )
    for proc in processes:
        torn = (
            f", {proc['torn_tail_bytes']} torn tail byte(s)"
            if proc["torn_tail_bytes"]
            else ""
        )
        print(
            f"  pid {proc['pid']}: {proc['process']} "
            f"(clock offset {proc['handshake_offset_us']}us{torn})"
        )
    problems = validate_chrome_trace(doc)
    if problems:
        for problem in problems[:_DOCTOR_SECTION_LIMIT]:
            print(f"  invalid: {problem}", file=sys.stderr)
        print(f"trace INVALID ({len(problems)} problem(s))", file=sys.stderr)
        return 1
    if not processes:
        print(
            "trace valid but EMPTY — no sidecars matched "
            f"(looked in {spans_dir})",
            file=sys.stderr,
        )
    else:
        print("trace valid (open in https://ui.perfetto.dev)")
    return 0


class TopView:
    """Renderer behind ``repro top``: metrics+jobs snapshots in, one
    terminal screen out.

    Kept free of I/O so tests can drive :meth:`update` with canned
    snapshots.  Rates (cells/s, leases/s, journal records/s) come from
    counter deltas between successive polls; histogram rows are
    p50/p99 derived from the log2 buckets in the flat metrics dict.
    """

    RATE_KEYS = (
        ("service.cells.done", "cells done"),
        ("service.leases.granted", "leases granted"),
        ("service.journal.records", "journal records"),
    )
    RETRY_KEYS = (
        "service.requeues",
        "service.leases.expired",
        "service.cells.failed",
        "service.cells.duplicate",
    )

    def __init__(self, url: str = "") -> None:
        self.url = url
        self._prev: dict = {}
        self._prev_time: Optional[float] = None

    def update(self, metrics, jobs, now: float) -> str:
        from repro.obs import histogram_summaries_from_flat

        lines = [f"repro top — {self.url or 'coordinator'}"]

        lines.append("jobs:")
        if not jobs:
            lines.append("  (none submitted)")
        for job in jobs:
            cells = job.get("cells", {})
            total = sum(cells.values())
            lines.append(
                f"  {job['job']}: {job['state']} — "
                f"{cells.get('done', 0)}/{total} cells done"
                f" ({cells.get('failed', 0)} failed,"
                f" {cells.get('leased', 0)} leased)"
            )

        lines.append("workers:")
        prefix = "service.heartbeat.age_seconds{worker="
        seen_worker = False
        for key in sorted(metrics):
            if not key.startswith(prefix):
                continue
            seen_worker = True
            worker = key[len(prefix):].rstrip("}")
            lines.append(
                f"  {worker}: lease live, heartbeat {metrics[key]:.1f}s ago"
            )
        if not seen_worker:
            lines.append("  (no live leases)")

        lines.append("rates:")
        dt = (
            now - self._prev_time
            if self._prev_time is not None and now > self._prev_time
            else None
        )
        for key, label in self.RATE_KEYS:
            value = metrics.get(key)
            if not isinstance(value, (int, float)):
                continue
            if dt and key in self._prev:
                delta = value - self._prev[key]
                if delta < 0:
                    # Counters are cumulative per process: a negative
                    # delta means the exporting worker restarted and
                    # its counter reset, not that work was undone.
                    # Clamp to zero and flag the sample instead of
                    # showing a nonsense negative rate.
                    lines.append(f"  {label}: {value:g} (0.0/s, reset)")
                else:
                    rate = delta / dt
                    lines.append(f"  {label}: {value:g} ({rate:.1f}/s)")
            else:
                lines.append(f"  {label}: {value:g}")
            self._prev[key] = value
        self._prev_time = now

        retries = [
            f"{key.rsplit('.', 1)[-1]}={metrics[key]:g}"
            for key in self.RETRY_KEYS
            if isinstance(metrics.get(key), (int, float))
        ]
        if retries:
            lines.append("retries:  " + "  ".join(retries))

        summaries = histogram_summaries_from_flat(metrics, qs=(0.5, 0.99))
        if summaries:
            lines.append("latency (p50/p99):")
            for base, row in sorted(summaries.items()):
                lines.append(
                    f"  {base}: n={row['count']} "
                    f"p50={row['p50']:.0f} p99={row['p99']:.0f}"
                )
        return "\n".join(lines)


def cmd_top(args) -> int:
    """Live terminal view of a running coordinator (``/metrics.json``
    + ``/jobs`` polled every ``--interval`` seconds)."""
    import time as timelib
    from urllib import error

    view = TopView(args.url)
    iterations = 1 if args.once else args.iterations
    shown = 0
    while True:
        try:
            metrics = _service_get(args.url, "/metrics.json").get(
                "metrics", {}
            )
            jobs = _service_get(args.url, "/jobs").get("jobs", [])
        except (error.URLError, OSError) as exc:
            print(
                f"cannot reach coordinator at {args.url}: {exc}",
                file=sys.stderr,
            )
            return 1
        screen = view.update(metrics, jobs, timelib.monotonic())
        if shown and sys.stdout.isatty():
            sys.stdout.write("\x1b[2J\x1b[H")
        print(screen, flush=True)
        shown += 1
        if iterations and shown >= iterations:
            return 0
        try:
            timelib.sleep(max(args.interval, 0.05))
        except KeyboardInterrupt:
            return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="aprof-drms reproduction (CGO 2014)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered workloads").set_defaults(
        func=cmd_list
    )

    def add_workload_args(p):
        p.add_argument("workload", choices=sorted(REGISTRY))
        p.add_argument("--threads", type=int, default=4)
        p.add_argument("--scale", type=int, default=1)

    def add_engine_arg(p):
        p.add_argument(
            "--engine",
            choices=ENGINES,
            default=DEFAULT_ENGINE,
            help="replay kernel: scalar event loop, batched opcode "
            "dispatch, or the columnar superop kernel (default)",
        )

    def add_partitions_arg(p):
        p.add_argument(
            "--partitions",
            type=int,
            default=None,
            metavar="N",
            help="split each trace at section boundaries — depth-zero "
            "where possible, mid-activation with per-thread carries "
            "otherwise — and replay the partitions in N worker "
            "processes (0 = one per CPU); unsplittable traces degrade "
            "to a single partition",
        )

    p = sub.add_parser("profile", help="profile a workload")
    add_workload_args(p)
    p.add_argument("--metric", choices=sorted(POLICIES), default="drms")
    p.add_argument("--routine", help="only this routine")
    p.add_argument(
        "--points", type=int, default=0, help="print up to N plot points"
    )
    p.add_argument("--json", help="also write the profile as JSON to FILE")
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("characterize", help="workload characterization")
    add_workload_args(p)
    p.set_defaults(func=cmd_characterize)

    p = sub.add_parser("overhead", help="tool slowdown/space comparison")
    p.add_argument("--suite", choices=SUITES, default="specomp")
    p.add_argument("--benchmarks", nargs="*", help="restrict to these")
    p.add_argument("--threads", type=int, default=4)
    p.add_argument("--scale", type=int, default=2)
    p.add_argument("--repeats", type=int, default=3)
    p.add_argument(
        "--parallel",
        type=int,
        default=None,
        metavar="N",
        help="replay the recorded trace under the tools in N processes",
    )
    p.add_argument("--json", help="write the full measurements to FILE")
    p.add_argument(
        "--faults",
        type=int,
        default=None,
        metavar="SEED",
        help="run with deterministic fault injection (FaultPlan seed)",
    )
    p.add_argument(
        "--metrics",
        action="store_true",
        help="collect runner telemetry and print the metrics table",
    )
    add_engine_arg(p)
    add_partitions_arg(p)
    p.set_defaults(func=cmd_overhead)

    p = sub.add_parser(
        "sweep",
        help="cached workload x tool x scale sweep with merged cost models",
    )
    p.add_argument("--suite", choices=SUITES, default="micro")
    p.add_argument(
        "--workloads",
        nargs="*",
        help="explicit workload names (overrides --suite)",
    )
    p.add_argument(
        "--scales",
        nargs="+",
        type=int,
        default=[1, 2],
        metavar="N",
        help="input scales forming the matrix columns",
    )
    p.add_argument("--threads", type=int, default=4)
    p.add_argument(
        "--tools",
        nargs="*",
        choices=sorted(DEFAULT_TOOLS),
        help="restrict the replayed tools (default: all six)",
    )
    p.add_argument(
        "--store",
        required=True,
        metavar="DIR",
        help="content-addressed trace-store directory",
    )
    p.add_argument("--repeats", type=int, default=1)
    p.add_argument(
        "--parallel",
        type=int,
        default=None,
        metavar="N",
        help="run sweep cells in N supervised worker processes",
    )
    p.add_argument(
        "--faults",
        type=int,
        default=None,
        metavar="SEED",
        help="record with deterministic fault injection (part of the key)",
    )
    p.add_argument(
        "--remeasure",
        action="store_true",
        help="ignore cached replay measurements (traces stay cached)",
    )
    p.add_argument("--json", help="write the strict-JSON report to FILE")
    p.add_argument(
        "--metrics",
        action="store_true",
        help="collect sweep telemetry and print the metrics table",
    )
    add_engine_arg(p)
    add_partitions_arg(p)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "communicate", help="routine-level communication matrix"
    )
    add_workload_args(p)
    p.add_argument("--limit", type=int, default=15)
    p.add_argument(
        "--no-kernel", action="store_true", help="ignore kernel-produced data"
    )
    p.set_defaults(func=cmd_communicate)

    p = sub.add_parser("trace", help="dump a workload's event trace")
    add_workload_args(p)
    p.add_argument("--limit", type=int, default=50)
    p.add_argument("--save", help="write the full trace to FILE instead")
    p.add_argument(
        "--binary",
        action="store_true",
        help="with --save: write the crash-safe binary format",
    )
    p.add_argument(
        "--metrics",
        action="store_true",
        help="collect VM telemetry and print the metrics table to stderr",
    )
    add_engine_arg(p)
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("report", help="full analysis report")
    add_workload_args(p)
    p.set_defaults(func=cmd_report)

    p = sub.add_parser(
        "diagnose", help="flag routines with suspicious cost variance"
    )
    add_workload_args(p)
    p.add_argument("--metric", choices=sorted(POLICIES), default="rms")
    p.add_argument("--spread", type=float, default=2.0)
    p.set_defaults(func=cmd_diagnose)

    p = sub.add_parser(
        "doctor", help="integrity-check a binary trace file or trace store"
    )
    p.add_argument("--trace", help="binary trace to examine")
    p.add_argument(
        "--store",
        metavar="DIR",
        help="audit a whole trace store instead of one trace",
    )
    p.add_argument(
        "--recover",
        nargs="?",
        const=True,
        default=None,
        metavar="OUT",
        help="with --trace: write the longest valid prefix to OUT; "
        "with --store: quarantine every bad file (no argument)",
    )
    p.add_argument(
        "--partitions",
        type=int,
        default=4,
        metavar="N",
        help="also print the N-way partition plan (why the trace is or "
        "isn't splittable for parallel replay; 0 = one per CPU)",
    )
    p.add_argument(
        "--flight-out",
        metavar="FILE",
        help="write the doctor's findings as a Chrome trace; detected "
        "corruption triggers a flight-recorder dump in it",
    )
    p.set_defaults(func=cmd_doctor)

    p = sub.add_parser(
        "serve",
        help="run the crash-safe sweep coordinator + worker processes",
    )
    p.add_argument(
        "--store",
        required=True,
        metavar="DIR",
        help="content-addressed trace-store directory (shared by workers)",
    )
    p.add_argument(
        "--journal",
        required=True,
        metavar="FILE",
        help="append-only job journal (replayed on startup)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8642)
    p.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="local worker processes to spawn (0 = coordinator only)",
    )
    p.add_argument(
        "--lease-timeout",
        type=float,
        default=30.0,
        metavar="SEC",
        help="heartbeat deadline before a cell lease is requeued",
    )
    p.add_argument(
        "--max-retries",
        type=int,
        default=3,
        metavar="N",
        help="requeues per cell before it is marked failed",
    )
    p.add_argument(
        "--until-idle",
        action="store_true",
        help="exit once every submitted job is terminal",
    )
    p.add_argument(
        "--linger",
        type=float,
        default=5.0,
        metavar="SEC",
        help="with --until-idle: keep serving this long after idle so "
        "waiting clients can fetch the final job state",
    )
    p.add_argument(
        "--poll",
        type=float,
        default=0.2,
        metavar="SEC",
        help="supervisor/worker poll interval",
    )
    p.add_argument(
        "--no-fsync",
        action="store_true",
        help="skip fsync on journal appends (tests only)",
    )
    p.add_argument(
        "--spans-dir",
        metavar="DIR",
        default=None,
        help="directory for per-process span sidecars "
        "(default: <journal>.spans)",
    )
    p.add_argument(
        "--no-trace",
        action="store_true",
        help="disable distributed tracing (no span sidecars)",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "submit", help="submit a sweep job to a running coordinator"
    )
    p.add_argument(
        "--url", required=True, help="coordinator base URL (from serve)"
    )
    p.add_argument(
        "--workloads",
        nargs="+",
        required=True,
        choices=sorted(REGISTRY),
        metavar="W",
    )
    p.add_argument(
        "--scales", nargs="+", type=int, default=[1, 2], metavar="N"
    )
    p.add_argument("--threads", type=int, default=4)
    p.add_argument(
        "--tools",
        nargs="*",
        choices=sorted(DEFAULT_TOOLS),
        help="restrict the replayed tools (default: all)",
    )
    p.add_argument("--repeats", type=int, default=1)
    p.add_argument(
        "--faults",
        type=int,
        default=None,
        metavar="SEED",
        help="record with deterministic fault injection",
    )
    p.add_argument(
        "--wait",
        action="store_true",
        help="block until the job is terminal (exit 0 complete, 3 degraded)",
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        metavar="SEC",
        help="with --wait: give up after this long (exit 1)",
    )
    p.add_argument(
        "--poll",
        type=float,
        default=0.5,
        metavar="SEC",
        help="with --wait: poll interval",
    )
    p.add_argument("--json", help="write the final job report to FILE")
    add_engine_arg(p)
    add_partitions_arg(p)
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser(
        "jobs", help="inspect coordinator jobs (live URL or offline journal)"
    )
    p.add_argument("job", nargs="?", help="job id for a full report")
    p.add_argument("--url", help="coordinator base URL")
    p.add_argument(
        "--journal",
        metavar="FILE",
        help="replay this journal offline instead of contacting a server",
    )
    p.add_argument(
        "--store",
        metavar="DIR",
        help="with --journal: trace store for merged trends in job reports",
    )
    p.add_argument("--json", help="write the result to FILE")
    p.set_defaults(func=cmd_jobs)

    p = sub.add_parser(
        "stats", help="run a workload under full telemetry"
    )
    p.add_argument(
        "workload", nargs="?", choices=sorted(REGISTRY), default=None
    )
    p.add_argument(
        "--workload",
        dest="workload_opt",
        choices=sorted(REGISTRY),
        default=None,
        help="alternative to the positional workload",
    )
    p.add_argument("--threads", type=int, default=4)
    p.add_argument("--scale", type=int, default=1)
    p.add_argument("--metric", choices=sorted(POLICIES), default="drms")
    p.add_argument(
        "--counter-limit",
        type=int,
        default=None,
        metavar="N",
        help="drms timestamp-counter limit (triggers renumbering)",
    )
    p.add_argument(
        "--faults",
        type=int,
        default=None,
        metavar="SEED",
        help="run with deterministic fault injection (FaultPlan seed)",
    )
    p.add_argument(
        "--json",
        nargs="?",
        const="-",
        default=None,
        metavar="FILE",
        help="emit metrics as JSON (to FILE, or stdout if omitted)",
    )
    p.add_argument(
        "--prom",
        nargs="?",
        const="-",
        default=None,
        metavar="FILE",
        help="emit metrics as Prometheus text (to FILE, or stdout)",
    )
    p.add_argument(
        "--trace-out",
        metavar="FILE",
        help="write a Chrome trace-event span timeline (Perfetto)",
    )
    p.add_argument(
        "--url",
        default=None,
        help="also fetch and print a running coordinator's metrics",
    )
    add_engine_arg(p)
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser(
        "trace-export",
        help="merge a job's span sidecars into one Perfetto trace",
    )
    p.add_argument("--job", required=True, help="job id (from submit)")
    p.add_argument(
        "--journal",
        required=True,
        metavar="FILE",
        help="coordinator journal (replayed read-only for the trace id)",
    )
    p.add_argument(
        "--spans-dir",
        metavar="DIR",
        default=None,
        help="span sidecar directory (default: <journal>.spans)",
    )
    p.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help="trace store (optional; only used for journal replay)",
    )
    p.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="output path (default: <job>.trace.json)",
    )
    p.set_defaults(func=cmd_trace_export)

    p = sub.add_parser(
        "top", help="live terminal view of a running coordinator"
    )
    p.add_argument(
        "--url", required=True, help="coordinator base URL (from serve)"
    )
    p.add_argument(
        "--interval",
        type=float,
        default=1.0,
        metavar="SEC",
        help="poll interval",
    )
    p.add_argument(
        "--iterations",
        type=int,
        default=0,
        metavar="N",
        help="stop after N refreshes (0 = until interrupted)",
    )
    p.add_argument(
        "--once",
        action="store_true",
        help="print a single snapshot and exit",
    )
    p.set_defaults(func=cmd_top)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())

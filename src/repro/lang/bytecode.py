"""Bytecode: a stack machine organised in basic blocks.

Each function is lowered to a control-flow graph of
:class:`BasicBlock` s.  A block is a straight-line instruction sequence
ending in exactly one terminator (``JUMP``, ``BRANCH`` or ``RET``);
the interpreter charges **one cost unit per block entered**, so the
profiled cost of mini-language programs is literally "executed basic
blocks" — the metric of the paper.

Instructions (operand stack effects in brackets):

=============  =====================================================
``CONST v``    [] -> [v]
``LOAD x``     [] -> [locals[x]]
``STORE x``    [v] -> []           (also declares x)
``BINOP op``   [a, b] -> [a op b]  (arith, comparison)
``UNOP op``    [a] -> [op a]       (neg, not)
``LOAD_MEM``   [addr] -> [memory[addr]]        (traced read)
``STORE_MEM``  [addr, v] -> []                 (traced write)
``CALL f n``   [a1..an] -> [result]            (user fn or builtin)
``SPAWN f n``  [a1..an] -> [thread handle]      (guest thread creation)
``POP``        [v] -> []
=============  =====================================================

Terminators:

=================  ================================================
``JUMP b``         unconditional edge to block b
``BRANCH t e``     [cond] -> [] ; edge to t if truthy else e
``RET``            [v] -> return v from the activation
=================  ================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "Instr",
    "Terminator",
    "BasicBlock",
    "CompiledFunction",
    "CompiledProgram",
    "BUILTINS",
]

#: builtin functions with their arity (resolved by the interpreter)
BUILTINS: Dict[str, int] = {
    "alloc": 1,   # alloc(n) -> base address of n fresh cells
    "input": 2,   # input(buf, n) -> cells read from the input stream
    "output": 2,  # output(addr, n) -> cells written to the output sink
    "print": 1,   # print(v) -> v, appended to the program's output log
    "join": 1,    # join(handle) -> thread result (blocks until done)
}


@dataclass(frozen=True)
class Instr:
    op: str
    arg: object = None
    arg2: object = None
    line: int = 0

    def __repr__(self) -> str:
        parts = [self.op]
        if self.arg is not None:
            parts.append(str(self.arg))
        if self.arg2 is not None:
            parts.append(str(self.arg2))
        return " ".join(parts)


@dataclass(frozen=True)
class Terminator:
    op: str  # "JUMP" | "BRANCH" | "RET"
    target: Optional[int] = None
    else_target: Optional[int] = None

    def __repr__(self) -> str:
        if self.op == "JUMP":
            return f"JUMP B{self.target}"
        if self.op == "BRANCH":
            return f"BRANCH B{self.target} B{self.else_target}"
        return "RET"


@dataclass
class BasicBlock:
    index: int
    instrs: List[Instr] = field(default_factory=list)
    terminator: Optional[Terminator] = None

    @property
    def terminated(self) -> bool:
        return self.terminator is not None

    def successors(self) -> Tuple[int, ...]:
        if self.terminator is None or self.terminator.op == "RET":
            return ()
        if self.terminator.op == "JUMP":
            return (self.terminator.target,)
        return (self.terminator.target, self.terminator.else_target)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = "; ".join(map(repr, self.instrs))
        return f"B{self.index}[{body} | {self.terminator!r}]"


@dataclass
class CompiledFunction:
    name: str
    params: Tuple[str, ...]
    blocks: List[BasicBlock] = field(default_factory=list)

    def new_block(self) -> BasicBlock:
        block = BasicBlock(len(self.blocks))
        self.blocks.append(block)
        return block

    def validate(self) -> None:
        """Structural sanity: every block terminated, every edge valid."""
        if not self.blocks:
            raise ValueError(f"function {self.name!r} has no blocks")
        for block in self.blocks:
            if not block.terminated:
                raise ValueError(
                    f"unterminated block B{block.index} in {self.name!r}"
                )
            for successor in block.successors():
                if not 0 <= successor < len(self.blocks):
                    raise ValueError(
                        f"edge to missing block B{successor} in {self.name!r}"
                    )

    def dump(self) -> str:
        """Human-readable CFG listing (``repro.lang`` debugging aid)."""
        lines = [f"fn {self.name}({', '.join(self.params)}):"]
        for block in self.blocks:
            lines.append(f"  B{block.index}:")
            for instr in block.instrs:
                lines.append(f"    {instr!r}")
            lines.append(f"    {block.terminator!r}")
        return "\n".join(lines)


@dataclass
class CompiledProgram:
    functions: Dict[str, CompiledFunction] = field(default_factory=dict)

    def validate(self) -> None:
        for function in self.functions.values():
            function.validate()

    def dump(self) -> str:
        return "\n\n".join(
            self.functions[name].dump() for name in sorted(self.functions)
        )

"""Token definitions and the lexer for the mini language.

The language ("minilang") is a small C-flavoured imperative language used
to write profilable guest programs whose cost really is *executed basic
blocks*: the compiler lowers each function to a control-flow graph of
basic blocks and the interpreter charges one block per block entered —
the exact metric aprof uses (Section 4.1, Implementation Details).

Lexical grammar::

    NUMBER   := [0-9]+
    IDENT    := [A-Za-z_][A-Za-z0-9_]*
    keywords := fn var if else while return true false and or not spawn
    operators:= + - * / % == != < <= > >= = ( ) { } [ ] , ;
    comments := // to end of line
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

__all__ = ["TokenType", "Token", "LexError", "tokenize"]


class TokenType(enum.Enum):
    NUMBER = "number"
    IDENT = "ident"
    KEYWORD = "keyword"
    OP = "op"
    EOF = "eof"


KEYWORDS = frozenset(
    [
        "fn",
        "var",
        "if",
        "else",
        "while",
        "return",
        "true",
        "false",
        "and",
        "or",
        "not",
        "spawn",
    ]
)

#: multi-character operators first so maximal munch works
OPERATORS = (
    "==",
    "!=",
    "<=",
    ">=",
    "+",
    "-",
    "*",
    "/",
    "%",
    "<",
    ">",
    "=",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ",",
    ";",
)


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"{self.type.value}({self.value!r})@{self.line}:{self.column}"


class LexError(SyntaxError):
    """Raised on an unrecognised character."""


def tokenize(source: str) -> List[Token]:
    """Convert source text to a token list ending with an EOF token."""
    tokens: List[Token] = []
    line = 1
    column = 1
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch.isdigit():
            start = i
            while i < n and source[i].isdigit():
                i += 1
            tokens.append(
                Token(TokenType.NUMBER, source[start:i], line, column)
            )
            column += i - start
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            word = source[start:i]
            kind = TokenType.KEYWORD if word in KEYWORDS else TokenType.IDENT
            tokens.append(Token(kind, word, line, column))
            column += i - start
            continue
        for op in OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token(TokenType.OP, op, line, column))
                i += len(op)
                column += len(op)
                break
        else:
            raise LexError(
                f"unexpected character {ch!r} at line {line}, column {column}"
            )
    tokens.append(Token(TokenType.EOF, "", line, column))
    return tokens

"""Bytecode interpreter: mini-language programs as VM guest threads.

Each function activation is a generator routine driven through
:meth:`repro.vm.context.ThreadContext.call`, so the profiler sees proper
``call``/``return`` events with cost snapshots.  Costs are charged **one
unit per basic block entered** — the paper's cost metric, here by
construction rather than approximation.  Array cells live in VM memory:
``LOAD_MEM``/``STORE_MEM`` become traced reads and writes, and the
``input``/``output`` builtins are real system calls
(``kernelToUser``/``userToKernel`` events), so mini-language programs
exhibit rms/drms behaviour identical to hand-written workloads.

Loop back-edges yield to the scheduler, making multi-threaded guest
programs (several spawned mini-language mains) interleave like any
other workload.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.lang.bytecode import CompiledFunction, CompiledProgram
from repro.lang.compiler import compile_source
from repro.vm import Machine, SinkDevice, StreamDevice

__all__ = ["MiniLangError", "MiniRuntime", "run_source", "run_program"]


class MiniLangError(RuntimeError):
    """Guest-program runtime fault (bad call, arithmetic error, ...)."""


class MiniRuntime:
    """Binds a compiled program to a machine, its I/O devices and
    the interpreter loop."""

    def __init__(
        self,
        program: CompiledProgram,
        machine: Machine,
        input_data: Optional[Iterable[int]] = None,
    ) -> None:
        self.program = program
        self.machine = machine
        self.input_fd = machine.kernel.open(
            StreamDevice(data=iter(input_data) if input_data is not None else None)
        )
        self.output_device = SinkDevice()
        self.output_fd = machine.kernel.open(self.output_device)
        #: values print()ed by the guest program
        self.printed: List[Any] = []

    # -- routine factory --------------------------------------------------

    def routine(self, name: str):
        """A VM routine (generator function) running guest function
        ``name``; suitable for ``Machine.spawn`` and ``ctx.call``."""
        function = self.program.functions.get(name)
        if function is None:
            raise MiniLangError(f"no function {name!r}")

        def guest_routine(ctx, *args):
            result = yield from self._execute(ctx, function, args)
            return result

        guest_routine.__name__ = name
        return guest_routine

    def spawn_main(self, *args: int, main: str = "main"):
        return self.machine.spawn(self.routine(main), *args, name=main)

    # -- interpreter loop --------------------------------------------------------

    def _execute(self, ctx, function: CompiledFunction, args: Tuple):
        if len(args) != len(function.params):
            raise MiniLangError(
                f"{function.name}() takes {len(function.params)} "
                f"argument(s), got {len(args)}"
            )
        local_vars: Dict[str, Any] = dict(zip(function.params, args))
        stack: List[Any] = []
        block = function.blocks[0]
        while True:
            ctx.compute(1)  # one executed basic block
            for instr in block.instrs:
                op = instr.op
                if op == "CONST":
                    stack.append(instr.arg)
                elif op == "LOAD":
                    if instr.arg not in local_vars:
                        raise MiniLangError(
                            f"undefined variable {instr.arg!r} in "
                            f"{function.name} at line {instr.line}"
                        )
                    stack.append(local_vars[instr.arg])
                elif op == "STORE":
                    local_vars[instr.arg] = stack.pop()
                elif op == "BINOP":
                    right = stack.pop()
                    left = stack.pop()
                    stack.append(
                        self._binop(instr.arg, left, right, function, instr)
                    )
                elif op == "UNOP":
                    value = stack.pop()
                    if instr.arg == "-":
                        stack.append(-value)
                    elif instr.arg == "not":
                        stack.append(0 if value else 1)
                    elif instr.arg == "bool":
                        stack.append(1 if value else 0)
                    else:
                        raise MiniLangError(f"bad unop {instr.arg!r}")
                elif op == "LOAD_MEM":
                    addr = stack.pop()
                    stack.append(ctx.read(addr))
                elif op == "STORE_MEM":
                    value = stack.pop()
                    addr = stack.pop()
                    ctx.write(addr, value)
                elif op == "POP":
                    stack.pop()
                elif op == "SPAWN":
                    argc = instr.arg2
                    call_args = tuple(stack[len(stack) - argc :])
                    del stack[len(stack) - argc :]
                    handle = ctx.spawn(
                        self.routine(instr.arg), *call_args, name=instr.arg
                    )
                    stack.append(handle)
                elif op == "CALL":
                    argc = instr.arg2
                    call_args = tuple(stack[len(stack) - argc :])
                    del stack[len(stack) - argc :]
                    result = yield from self._call(ctx, instr.arg, call_args)
                    stack.append(result)
                else:
                    raise MiniLangError(f"bad opcode {op!r}")

            terminator = block.terminator
            if terminator.op == "RET":
                return stack.pop()
            if terminator.op == "JUMP":
                target = terminator.target
            else:  # BRANCH
                condition = stack.pop()
                target = (
                    terminator.target if condition else terminator.else_target
                )
            if target <= block.index:
                yield  # loop back-edge: preemption point
            block = function.blocks[target]

    def _binop(self, op, left, right, function, instr):
        try:
            if op == "+":
                return left + right
            if op == "-":
                return left - right
            if op == "*":
                return left * right
            if op == "/":
                return left // right
            if op == "%":
                return left % right
        except ZeroDivisionError:
            raise MiniLangError(
                f"division by zero in {function.name} at line {instr.line}"
            ) from None
        if op == "==":
            return 1 if left == right else 0
        if op == "!=":
            return 1 if left != right else 0
        if op == "<":
            return 1 if left < right else 0
        if op == "<=":
            return 1 if left <= right else 0
        if op == ">":
            return 1 if left > right else 0
        if op == ">=":
            return 1 if left >= right else 0
        raise MiniLangError(f"bad binop {op!r}")

    def _call(self, ctx, name: str, args: Tuple):
        if name == "alloc":
            (size,) = args
            return ctx.alloc(size, name="guest")
        if name == "input":
            buf, count = args
            return ctx.sys_read(self.input_fd, buf, count)
        if name == "output":
            addr, count = args
            return ctx.sys_write(self.output_fd, addr, count)
        if name == "print":
            (value,) = args
            ctx.compute(1)
            self.printed.append(value)
            return value
        if name == "join":
            (handle,) = args
            if not hasattr(handle, "done"):
                raise MiniLangError("join() expects a spawn handle")
            yield from ctx.join(handle)
            return handle.result
        result = yield from ctx.call(self.routine(name), *args, name=name)
        return result


def run_program(
    program: CompiledProgram,
    *args: int,
    machine: Optional[Machine] = None,
    input_data: Optional[Iterable[int]] = None,
    main: str = "main",
) -> Tuple[Machine, MiniRuntime, Any]:
    """Run a compiled program's ``main`` to completion.

    Returns ``(machine, runtime, result)`` — the machine holds the trace,
    the runtime the output devices and the print log.
    """
    if machine is None:
        machine = Machine()
    runtime = MiniRuntime(program, machine, input_data=input_data)
    handle = runtime.spawn_main(*args, main=main)
    machine.run()
    return machine, runtime, handle.result


def run_source(
    source: str,
    *args: int,
    machine: Optional[Machine] = None,
    input_data: Optional[Iterable[int]] = None,
    main: str = "main",
) -> Tuple[Machine, MiniRuntime, Any]:
    """Compile and run mini-language source text (see :func:`run_program`)."""
    return run_program(
        compile_source(source),
        *args,
        machine=machine,
        input_data=input_data,
        main=main,
    )

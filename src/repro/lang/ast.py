"""Abstract syntax tree for the mini language.

Plain frozen dataclasses; the parser builds these and the compiler
lowers them to basic-block bytecode.  Expressions and statements carry
the source line for error messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

__all__ = [
    "Expr",
    "Number",
    "Bool",
    "Var",
    "Binary",
    "Unary",
    "CallExpr",
    "Index",
    "SpawnExpr",
    "Stmt",
    "VarDecl",
    "Assign",
    "StoreIndex",
    "If",
    "While",
    "Return",
    "ExprStmt",
    "Block",
    "Function",
    "Program",
]


@dataclass(frozen=True)
class Number:
    value: int
    line: int = 0


@dataclass(frozen=True)
class Bool:
    value: bool
    line: int = 0


@dataclass(frozen=True)
class Var:
    name: str
    line: int = 0


@dataclass(frozen=True)
class Binary:
    op: str
    left: "Expr"
    right: "Expr"
    line: int = 0


@dataclass(frozen=True)
class Unary:
    op: str  # "-" or "not"
    operand: "Expr"
    line: int = 0


@dataclass(frozen=True)
class CallExpr:
    name: str
    args: Tuple["Expr", ...]
    line: int = 0


@dataclass(frozen=True)
class Index:
    base: "Expr"
    index: "Expr"
    line: int = 0


@dataclass(frozen=True)
class SpawnExpr:
    """``spawn f(args)`` — start ``f`` on a new thread; evaluates to a
    thread handle for ``join``."""

    name: str
    args: Tuple["Expr", ...]
    line: int = 0


Expr = Union[Number, Bool, Var, Binary, Unary, CallExpr, Index, SpawnExpr]


@dataclass(frozen=True)
class VarDecl:
    name: str
    value: Expr
    line: int = 0


@dataclass(frozen=True)
class Assign:
    name: str
    value: Expr
    line: int = 0


@dataclass(frozen=True)
class StoreIndex:
    base: Expr
    index: Expr
    value: Expr
    line: int = 0


@dataclass(frozen=True)
class If:
    condition: Expr
    then_body: "Block"
    else_body: Optional["Block"]
    line: int = 0


@dataclass(frozen=True)
class While:
    condition: Expr
    body: "Block"
    line: int = 0


@dataclass(frozen=True)
class Return:
    value: Optional[Expr]
    line: int = 0


@dataclass(frozen=True)
class ExprStmt:
    expr: Expr
    line: int = 0


Stmt = Union[VarDecl, Assign, StoreIndex, If, While, Return, ExprStmt]


@dataclass(frozen=True)
class Block:
    statements: Tuple[Stmt, ...]


@dataclass(frozen=True)
class Function:
    name: str
    params: Tuple[str, ...]
    body: Block
    line: int = 0


@dataclass
class Program:
    functions: List[Function] = field(default_factory=list)

    def function(self, name: str) -> Function:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(f"no function {name!r}")

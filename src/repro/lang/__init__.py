"""minilang: a small imperative language compiled to basic-block
bytecode and executed on the trace VM.

Guest programs are profiled exactly like hand-written workloads — with
the bonus that their cost metric is *literally* executed basic blocks,
since the interpreter charges one unit per CFG block entered.

    from repro.lang import run_source

    machine, runtime, result = run_source(SOURCE, 32)
    report = profile_events(machine.trace)
"""

from repro.lang.bytecode import (
    BUILTINS,
    BasicBlock,
    CompiledFunction,
    CompiledProgram,
    Instr,
    Terminator,
)
from repro.lang.compiler import CompileError, compile_program, compile_source
from repro.lang.interp import MiniLangError, MiniRuntime, run_program, run_source
from repro.lang.parser import ParseError, parse
from repro.lang.tokens import LexError, Token, TokenType, tokenize

__all__ = [
    "tokenize",
    "Token",
    "TokenType",
    "LexError",
    "parse",
    "ParseError",
    "compile_source",
    "compile_program",
    "CompileError",
    "CompiledProgram",
    "CompiledFunction",
    "BasicBlock",
    "Instr",
    "Terminator",
    "BUILTINS",
    "run_source",
    "run_program",
    "MiniRuntime",
    "MiniLangError",
]

"""Recursive-descent parser for the mini language.

Grammar (EBNF)::

    program   := function*
    function  := "fn" IDENT "(" [IDENT ("," IDENT)*] ")" block
    block     := "{" statement* "}"
    statement := "var" IDENT "=" expr ";"
               | IDENT "=" expr ";"
               | postfix "[" expr "]" "=" expr ";"
               | "if" "(" expr ")" block ["else" (block | if-stmt)]
               | "while" "(" expr ")" block
               | "return" [expr] ";"
               | expr ";"
    expr      := or
    or        := and ("or" and)*
    and       := not ("and" not)*
    not       := "not" not | comparison
    comparison:= sum (("=="|"!="|"<"|"<="|">"|">=") sum)?
    sum       := term (("+"|"-") term)*
    term      := unary (("*"|"/"|"%") unary)*
    unary     := "-" unary | postfix
    postfix   := primary ("[" expr "]" )*
    primary   := NUMBER | "true" | "false" | IDENT ["(" args ")"]
               | "(" expr ")"
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.lang.ast import (
    Assign,
    SpawnExpr,
    Binary,
    Block,
    Bool,
    CallExpr,
    Expr,
    ExprStmt,
    Function,
    If,
    Index,
    Number,
    Program,
    Return,
    Stmt,
    StoreIndex,
    Unary,
    Var,
    VarDecl,
    While,
)
from repro.lang.tokens import Token, TokenType, tokenize

__all__ = ["ParseError", "parse"]

COMPARISONS = ("==", "!=", "<", "<=", ">", ">=")


class ParseError(SyntaxError):
    """Raised on malformed input, with line information."""


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.position = 0

    # -- token plumbing ----------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.current
        if token.type is not TokenType.EOF:
            self.position += 1
        return token

    def check(self, type_: TokenType, value: Optional[str] = None) -> bool:
        token = self.current
        if token.type is not type_:
            return False
        return value is None or token.value == value

    def match(self, type_: TokenType, value: Optional[str] = None) -> bool:
        if self.check(type_, value):
            self.advance()
            return True
        return False

    def expect(self, type_: TokenType, value: Optional[str] = None) -> Token:
        if not self.check(type_, value):
            wanted = value if value is not None else type_.value
            raise ParseError(
                f"expected {wanted!r} but found {self.current.value!r} "
                f"at line {self.current.line}"
            )
        return self.advance()

    # -- grammar --------------------------------------------------------------

    def parse_program(self) -> Program:
        program = Program()
        seen = set()
        while not self.check(TokenType.EOF):
            function = self.parse_function()
            if function.name in seen:
                raise ParseError(
                    f"duplicate function {function.name!r} "
                    f"at line {function.line}"
                )
            seen.add(function.name)
            program.functions.append(function)
        return program

    def parse_function(self) -> Function:
        start = self.expect(TokenType.KEYWORD, "fn")
        name = self.expect(TokenType.IDENT).value
        self.expect(TokenType.OP, "(")
        params: List[str] = []
        if not self.check(TokenType.OP, ")"):
            params.append(self.expect(TokenType.IDENT).value)
            while self.match(TokenType.OP, ","):
                params.append(self.expect(TokenType.IDENT).value)
        if len(set(params)) != len(params):
            raise ParseError(
                f"duplicate parameter in {name!r} at line {start.line}"
            )
        self.expect(TokenType.OP, ")")
        body = self.parse_block()
        return Function(name, tuple(params), body, line=start.line)

    def parse_block(self) -> Block:
        self.expect(TokenType.OP, "{")
        statements: List[Stmt] = []
        while not self.check(TokenType.OP, "}"):
            if self.check(TokenType.EOF):
                raise ParseError("unexpected end of input: missing '}'")
            statements.append(self.parse_statement())
        self.expect(TokenType.OP, "}")
        return Block(tuple(statements))

    def parse_statement(self) -> Stmt:
        token = self.current
        if self.match(TokenType.KEYWORD, "var"):
            name = self.expect(TokenType.IDENT).value
            self.expect(TokenType.OP, "=")
            value = self.parse_expr()
            self.expect(TokenType.OP, ";")
            return VarDecl(name, value, line=token.line)
        if self.match(TokenType.KEYWORD, "if"):
            return self.parse_if(token)
        if self.match(TokenType.KEYWORD, "while"):
            self.expect(TokenType.OP, "(")
            condition = self.parse_expr()
            self.expect(TokenType.OP, ")")
            body = self.parse_block()
            return While(condition, body, line=token.line)
        if self.match(TokenType.KEYWORD, "return"):
            value = None
            if not self.check(TokenType.OP, ";"):
                value = self.parse_expr()
            self.expect(TokenType.OP, ";")
            return Return(value, line=token.line)
        # assignment / store / expression statement
        expr = self.parse_expr()
        if self.match(TokenType.OP, "="):
            value = self.parse_expr()
            self.expect(TokenType.OP, ";")
            if isinstance(expr, Var):
                return Assign(expr.name, value, line=token.line)
            if isinstance(expr, Index):
                return StoreIndex(
                    expr.base, expr.index, value, line=token.line
                )
            raise ParseError(
                f"invalid assignment target at line {token.line}"
            )
        self.expect(TokenType.OP, ";")
        return ExprStmt(expr, line=token.line)

    def parse_if(self, token: Token) -> If:
        self.expect(TokenType.OP, "(")
        condition = self.parse_expr()
        self.expect(TokenType.OP, ")")
        then_body = self.parse_block()
        else_body: Optional[Block] = None
        if self.match(TokenType.KEYWORD, "else"):
            if self.check(TokenType.KEYWORD, "if"):
                nested_token = self.advance()
                nested = self.parse_if(nested_token)
                else_body = Block((nested,))
            else:
                else_body = self.parse_block()
        return If(condition, then_body, else_body, line=token.line)

    # -- expressions (precedence climbing) --------------------------------------

    def parse_expr(self) -> Expr:
        return self.parse_or()

    def parse_or(self) -> Expr:
        left = self.parse_and()
        while self.check(TokenType.KEYWORD, "or"):
            line = self.advance().line
            right = self.parse_and()
            left = Binary("or", left, right, line=line)
        return left

    def parse_and(self) -> Expr:
        left = self.parse_not()
        while self.check(TokenType.KEYWORD, "and"):
            line = self.advance().line
            right = self.parse_not()
            left = Binary("and", left, right, line=line)
        return left

    def parse_not(self) -> Expr:
        if self.check(TokenType.KEYWORD, "not"):
            line = self.advance().line
            return Unary("not", self.parse_not(), line=line)
        return self.parse_comparison()

    def parse_comparison(self) -> Expr:
        left = self.parse_sum()
        if self.current.type is TokenType.OP and self.current.value in COMPARISONS:
            op = self.advance()
            right = self.parse_sum()
            return Binary(op.value, left, right, line=op.line)
        return left

    def parse_sum(self) -> Expr:
        left = self.parse_term()
        while self.current.type is TokenType.OP and self.current.value in (
            "+",
            "-",
        ):
            op = self.advance()
            right = self.parse_term()
            left = Binary(op.value, left, right, line=op.line)
        return left

    def parse_term(self) -> Expr:
        left = self.parse_unary()
        while self.current.type is TokenType.OP and self.current.value in (
            "*",
            "/",
            "%",
        ):
            op = self.advance()
            right = self.parse_unary()
            left = Binary(op.value, left, right, line=op.line)
        return left

    def parse_unary(self) -> Expr:
        if self.check(TokenType.OP, "-"):
            line = self.advance().line
            return Unary("-", self.parse_unary(), line=line)
        return self.parse_postfix()

    def parse_postfix(self) -> Expr:
        expr = self.parse_primary()
        while self.match(TokenType.OP, "["):
            index = self.parse_expr()
            self.expect(TokenType.OP, "]")
            expr = Index(expr, index)
        return expr

    def parse_primary(self) -> Expr:
        token = self.current
        if self.match(TokenType.KEYWORD, "spawn"):
            name = self.expect(TokenType.IDENT).value
            self.expect(TokenType.OP, "(")
            args: List[Expr] = []
            if not self.check(TokenType.OP, ")"):
                args.append(self.parse_expr())
                while self.match(TokenType.OP, ","):
                    args.append(self.parse_expr())
            self.expect(TokenType.OP, ")")
            return SpawnExpr(name, tuple(args), line=token.line)
        if self.match(TokenType.NUMBER):
            return Number(int(token.value), line=token.line)
        if self.match(TokenType.KEYWORD, "true"):
            return Bool(True, line=token.line)
        if self.match(TokenType.KEYWORD, "false"):
            return Bool(False, line=token.line)
        if self.match(TokenType.OP, "("):
            expr = self.parse_expr()
            self.expect(TokenType.OP, ")")
            return expr
        if self.check(TokenType.IDENT):
            name = self.advance().value
            if self.match(TokenType.OP, "("):
                args: List[Expr] = []
                if not self.check(TokenType.OP, ")"):
                    args.append(self.parse_expr())
                    while self.match(TokenType.OP, ","):
                        args.append(self.parse_expr())
                self.expect(TokenType.OP, ")")
                return CallExpr(name, tuple(args), line=token.line)
            return Var(name, line=token.line)
        raise ParseError(
            f"unexpected token {token.value!r} at line {token.line}"
        )


def parse(source: str) -> Program:
    """Parse mini-language source text into a :class:`Program` AST."""
    return _Parser(tokenize(source)).parse_program()

"""AST → basic-block bytecode compiler.

Lowers each function to a CFG.  Control constructs introduce the block
structure; ``and``/``or`` compile to short-circuit branches (so the
block counts of guest programs reflect the evaluation paths actually
taken, as native compiled code would).  The compiler performs the
static checks the language needs: every called function exists (or is a
builtin) and is called with the right arity, and assignments target
declared names along every path is *not* checked (locals are
function-scoped and dynamically created, as in the VM's host language).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.lang import ast
from repro.lang.bytecode import (
    BUILTINS,
    BasicBlock,
    CompiledFunction,
    CompiledProgram,
    Instr,
    Terminator,
)
from repro.lang.parser import parse

__all__ = ["CompileError", "compile_program", "compile_source"]

ARITH_OPS = frozenset(["+", "-", "*", "/", "%"])
COMPARE_OPS = frozenset(["==", "!=", "<", "<=", ">", ">="])


class CompileError(Exception):
    """Semantic error found while lowering."""


class _FunctionCompiler:
    def __init__(self, function: ast.Function, arities: Dict[str, int]) -> None:
        self.source = function
        self.arities = arities
        self.output = CompiledFunction(function.name, function.params)
        self.current: Optional[BasicBlock] = None

    # -- block plumbing -----------------------------------------------------

    def start_block(self) -> BasicBlock:
        block = self.output.new_block()
        self.current = block
        return block

    def emit(self, op: str, arg=None, arg2=None, line: int = 0) -> None:
        if self.current is None or self.current.terminated:
            # unreachable code after a return: compile into a dead block
            self.start_block()
        self.current.instrs.append(Instr(op, arg, arg2, line))

    def terminate(self, terminator: Terminator) -> None:
        if self.current is None or self.current.terminated:
            self.start_block()
        self.current.terminator = terminator

    # -- top level -------------------------------------------------------------

    def compile(self) -> CompiledFunction:
        self.start_block()
        self.compile_block(self.source.body)
        if self.current is not None and not self.current.terminated:
            # implicit `return 0`
            self.emit("CONST", 0)
            self.terminate(Terminator("RET"))
        # dead blocks created by unreachable code still need terminators
        for block in self.output.blocks:
            if not block.terminated:
                block.instrs.append(Instr("CONST", 0))
                block.terminator = Terminator("RET")
        self.output.validate()
        return self.output

    def compile_block(self, block: ast.Block) -> None:
        for statement in block.statements:
            self.compile_statement(statement)

    # -- statements ---------------------------------------------------------------

    def compile_statement(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, (ast.VarDecl, ast.Assign)):
            self.compile_expr(stmt.value)
            self.emit("STORE", stmt.name, line=stmt.line)
        elif isinstance(stmt, ast.StoreIndex):
            self.compile_expr(ast.Binary("+", stmt.base, stmt.index))
            self.compile_expr(stmt.value)
            self.emit("STORE_MEM", line=stmt.line)
        elif isinstance(stmt, ast.If):
            self.compile_if(stmt)
        elif isinstance(stmt, ast.While):
            self.compile_while(stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.compile_expr(stmt.value)
            else:
                self.emit("CONST", 0)
            self.terminate(Terminator("RET"))
        elif isinstance(stmt, ast.ExprStmt):
            self.compile_expr(stmt.expr)
            self.emit("POP", line=stmt.line)
        else:
            raise CompileError(f"unknown statement {stmt!r}")

    def compile_if(self, stmt: ast.If) -> None:
        self.compile_expr(stmt.condition)
        branch_block = self.current
        then_block = self.start_block()
        self.compile_block(stmt.then_body)
        then_exit = self.current
        else_entry: Optional[BasicBlock] = None
        else_exit: Optional[BasicBlock] = None
        if stmt.else_body is not None:
            else_entry = self.start_block()
            self.compile_block(stmt.else_body)
            else_exit = self.current
        join = self.start_block()
        branch_block.terminator = Terminator(
            "BRANCH",
            target=then_block.index,
            else_target=(else_entry.index if else_entry else join.index),
        )
        if not then_exit.terminated:
            then_exit.terminator = Terminator("JUMP", target=join.index)
        if else_exit is not None and not else_exit.terminated:
            else_exit.terminator = Terminator("JUMP", target=join.index)
        self.current = join

    def compile_while(self, stmt: ast.While) -> None:
        pre = self.current
        header = self.start_block()
        if pre is not None and not pre.terminated:
            pre.terminator = Terminator("JUMP", target=header.index)
        self.compile_expr(stmt.condition)
        condition_exit = self.current
        body = self.start_block()
        self.compile_block(stmt.body)
        body_exit = self.current
        after = self.start_block()
        condition_exit.terminator = Terminator(
            "BRANCH", target=body.index, else_target=after.index
        )
        if not body_exit.terminated:
            body_exit.terminator = Terminator("JUMP", target=header.index)
        self.current = after

    # -- expressions -----------------------------------------------------------------

    def compile_expr(self, expr: ast.Expr) -> None:
        if isinstance(expr, ast.Number):
            self.emit("CONST", expr.value, line=expr.line)
        elif isinstance(expr, ast.Bool):
            self.emit("CONST", 1 if expr.value else 0, line=expr.line)
        elif isinstance(expr, ast.Var):
            self.emit("LOAD", expr.name, line=expr.line)
        elif isinstance(expr, ast.Unary):
            self.compile_expr(expr.operand)
            self.emit("UNOP", expr.op, line=expr.line)
        elif isinstance(expr, ast.Binary):
            if expr.op in ("and", "or"):
                self.compile_short_circuit(expr)
            elif expr.op in ARITH_OPS or expr.op in COMPARE_OPS:
                self.compile_expr(expr.left)
                self.compile_expr(expr.right)
                self.emit("BINOP", expr.op, line=expr.line)
            else:
                raise CompileError(f"unknown operator {expr.op!r}")
        elif isinstance(expr, ast.Index):
            self.compile_expr(ast.Binary("+", expr.base, expr.index))
            self.emit("LOAD_MEM", line=expr.line)
        elif isinstance(expr, ast.SpawnExpr):
            if expr.name not in self.arities:
                raise CompileError(
                    f"spawn of unknown function {expr.name!r} "
                    f"at line {expr.line}"
                )
            if expr.name in BUILTINS:
                raise CompileError(
                    f"cannot spawn builtin {expr.name!r} at line {expr.line}"
                )
            expected = self.arities[expr.name]
            if len(expr.args) != expected:
                raise CompileError(
                    f"{expr.name!r} takes {expected} argument(s), "
                    f"got {len(expr.args)} at line {expr.line}"
                )
            for arg in expr.args:
                self.compile_expr(arg)
            self.emit("SPAWN", expr.name, len(expr.args), line=expr.line)
        elif isinstance(expr, ast.CallExpr):
            if expr.name not in self.arities:
                raise CompileError(
                    f"call to unknown function {expr.name!r} "
                    f"at line {expr.line}"
                )
            expected = self.arities[expr.name]
            if len(expr.args) != expected:
                raise CompileError(
                    f"{expr.name!r} takes {expected} argument(s), "
                    f"got {len(expr.args)} at line {expr.line}"
                )
            for arg in expr.args:
                self.compile_expr(arg)
            self.emit("CALL", expr.name, len(expr.args), line=expr.line)
        else:
            raise CompileError(f"unknown expression {expr!r}")

    def compile_short_circuit(self, expr: ast.Binary) -> None:
        """``a and b`` / ``a or b`` with branch-based evaluation.

        The result is re-materialised as 0/1 constants in the arms so the
        operand stack height is path-independent.
        """
        self.compile_expr(expr.left)
        first = self.current
        # evaluate the right side only when needed
        rhs = self.start_block()
        self.compile_expr(expr.right)
        self.emit("UNOP", "bool")
        rhs_exit = self.current
        shortcut = self.start_block()
        self.emit("CONST", 0 if expr.op == "and" else 1)
        shortcut_exit = self.current
        join = self.start_block()
        if expr.op == "and":
            first.terminator = Terminator(
                "BRANCH", target=rhs.index, else_target=shortcut.index
            )
        else:
            first.terminator = Terminator(
                "BRANCH", target=shortcut.index, else_target=rhs.index
            )
        rhs_exit.terminator = Terminator("JUMP", target=join.index)
        shortcut_exit.terminator = Terminator("JUMP", target=join.index)
        self.current = join


def compile_program(program: ast.Program) -> CompiledProgram:
    """Lower a parsed program to basic-block bytecode."""
    arities: Dict[str, int] = dict(BUILTINS)
    for function in program.functions:
        if function.name in BUILTINS:
            raise CompileError(
                f"function {function.name!r} shadows a builtin"
            )
        arities[function.name] = len(function.params)
    compiled = CompiledProgram()
    for function in program.functions:
        compiled.functions[function.name] = _FunctionCompiler(
            function, arities
        ).compile()
    compiled.validate()
    return compiled


def compile_source(source: str) -> CompiledProgram:
    """Parse and compile mini-language source text."""
    return compile_program(parse(source))

"""Complete per-workload analysis reports.

Ties every analysis in the package into one formatted text document —
what a user of the tool reads after a profiling run:

* run summary (events, blocks, threads, switches);
* whole-execution dynamic-workload characterization (input volume,
  thread/external split — §4.1);
* per-routine table: calls, cost-plot points under rms and drms,
  profile richness, fitted cost model, input composition;
* cost-variance diagnostics on the rms view (§2.1's indicator);
* the heaviest routine-level communication channels (§6 tool);
* worst-case cost plots for the most interesting routines.

The report is produced from a single recorded trace — the profilers run
under each metric internally — so it composes with the trace-file layer
for offline analysis.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.analysis.communication import analyze_communication
from repro.analysis.costfunc import best_fit
from repro.analysis.metrics import (
    dynamic_input_volume,
    induced_first_read_split,
    profile_richness,
    routine_input_shares,
)
from repro.analysis.plots import Series, ascii_scatter
from repro.analysis.variance import suspicion_report
from repro.core.events import Event
from repro.core.policy import FULL_POLICY, RMS_POLICY
from repro.core.profiler import profile_events

__all__ = ["workload_report"]


def _fit_label(plot) -> str:
    if len(plot) < 2:
        return "-"
    fit = best_fit(plot)
    return f"{fit.model} (R2={fit.r_squared:.2f})"


def workload_report(
    events: Sequence[Event],
    title: str = "workload",
    plot_routines: Optional[Sequence[str]] = None,
    max_rows: int = 20,
) -> str:
    """Render the full analysis of a recorded trace as text."""
    drms_report = profile_events(events, policy=FULL_POLICY)
    rms_report = profile_events(events, policy=RMS_POLICY)

    lines: List[str] = []
    rule = "=" * 72
    lines.append(rule)
    lines.append(f"Input-sensitive profile: {title}")
    lines.append(rule)
    lines.append(f"events: {len(events)}")

    volume = dynamic_input_volume(rms_report, drms_report)
    thread_pct, external_pct = induced_first_read_split(drms_report)
    lines.append(
        f"dynamic input volume: {volume:.3f}   "
        f"induced first-reads: {thread_pct:.1f}% thread / "
        f"{external_pct:.1f}% external"
    )
    lines.append("")

    # per-routine table
    richness = profile_richness(rms_report, drms_report)
    shares = {s.routine: s for s in routine_input_shares(drms_report)}
    drms_merged = drms_report.by_routine()
    rms_merged = rms_report.by_routine()
    lines.append(
        f"{'routine':>28} {'calls':>6} {'rms pts':>8} {'drms pts':>9} "
        f"{'richness':>9} {'thr%':>5} {'ext%':>5}  cost model"
    )
    ordered = sorted(
        drms_merged.items(), key=lambda kv: -kv[1].calls
    )[:max_rows]
    for routine, profile in ordered:
        rms_points = (
            rms_merged[routine].distinct_sizes if routine in rms_merged else 0
        )
        share = shares.get(routine)
        thr = f"{share.thread_pct:.0f}" if share else "-"
        ext = f"{share.external_pct:.0f}" if share else "-"
        lines.append(
            f"{routine:>28} {profile.calls:>6} {rms_points:>8} "
            f"{profile.distinct_sizes:>9} "
            f"{richness.get(routine, 0.0):>9.1f} {thr:>5} {ext:>5}  "
            f"{_fit_label(profile.worst_case_plot())}"
        )
    if len(drms_merged) > max_rows:
        lines.append(f"  ... and {len(drms_merged) - max_rows} more routines")
    lines.append("")

    # variance diagnostics on the blind metric
    flagged = suspicion_report(rms_report)
    if flagged:
        lines.append(
            "suspicious cost variance under rms (input sizes probably "
            "under-measured):"
        )
        for routine, points in sorted(flagged.items()):
            worst = points[0]
            lines.append(
                f"  {routine}: n={worst.input_size} spans cost "
                f"{worst.min_cost}..{worst.max_cost} over {worst.calls} calls"
            )
    else:
        lines.append("no suspicious cost variance under rms")
    lines.append("")

    # communication channels
    analyzer = analyze_communication(events)
    edges = analyzer.edges()
    if edges:
        lines.append("heaviest communication channels:")
        for edge in edges[:8]:
            lines.append(
                f"  {edge.producer} -> {edge.consumer}: {edge.cells} cells"
            )
    else:
        lines.append("no shared-memory or kernel communication observed")
    lines.append("")

    # cost plots for requested (or auto-picked) routines
    if plot_routines is None:
        plot_routines = [
            routine
            for routine, profile in sorted(
                drms_merged.items(), key=lambda kv: -kv[1].distinct_sizes
            )[:2]
            if profile.distinct_sizes >= 3
        ]
    for routine in plot_routines:
        if routine not in drms_merged:
            continue
        plot = drms_merged[routine].worst_case_plot()
        lines.append(
            ascii_scatter(
                [Series("drms", [(float(n), float(c)) for n, c in plot])],
                title=f"worst-case cost plot: {routine}",
                x_label="drms",
                y_label="cost",
                height=10,
            )
        )
    return "\n".join(lines)

"""Evaluation metrics, cost-function estimation, communication
characterization and plot rendering."""

from repro.analysis.communication import (
    CommunicationAnalyzer,
    CommunicationEdge,
    analyze_communication,
)
from repro.analysis.costfunc import (
    MODELS,
    CostModel,
    FitResult,
    best_fit,
    classify_trend,
    fit_model,
    powerlaw_exponent,
)
from repro.analysis.metrics import (
    RoutineInputShare,
    dynamic_input_volume,
    dynamic_input_volume_per_routine,
    induced_first_read_split,
    profile_richness,
    routine_input_shares,
    tail_curve,
)
from repro.analysis.report import workload_report
from repro.analysis.prediction import (
    Predictor,
    merge_reports,
    prediction_error,
    predictor_for,
)
from repro.analysis.variance import (
    SuspiciousPoint,
    suspicion_report,
    suspicious_points,
)
from repro.analysis.plots import (
    Series,
    ascii_histogram,
    ascii_scatter,
    stacked_histogram,
    to_csv,
)

__all__ = [
    "profile_richness",
    "dynamic_input_volume",
    "dynamic_input_volume_per_routine",
    "routine_input_shares",
    "induced_first_read_split",
    "tail_curve",
    "RoutineInputShare",
    "CostModel",
    "FitResult",
    "MODELS",
    "fit_model",
    "best_fit",
    "powerlaw_exponent",
    "classify_trend",
    "CommunicationAnalyzer",
    "CommunicationEdge",
    "analyze_communication",
    "Predictor",
    "predictor_for",
    "prediction_error",
    "merge_reports",
    "workload_report",
    "SuspiciousPoint",
    "suspicious_points",
    "suspicion_report",
    "Series",
    "ascii_scatter",
    "ascii_histogram",
    "stacked_histogram",
    "to_csv",
]

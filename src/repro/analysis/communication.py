"""Routine-granularity communication characterization (Section 6).

The paper closes with a future-work direction: *"we believe that our
drms computation algorithm may support the development of automatic
tools for characterizing how multi-threaded applications scale their
work and how they communicate via shared memory at routine activation
rather than thread granularity"* — referencing the black-box study of
Kalibera et al. [12].  This module implements that tool.

:class:`CommunicationAnalyzer` consumes the same merged event trace as
the profilers and attributes every *communication event* — a read that
consumes a value produced by a different thread, i.e. exactly a
thread-induced first-read — to the **(producer routine, consumer
routine)** pair, using the same latest-writer shadow state the drms
algorithm maintains.  The output is:

* a routine-level communication matrix (who produces for whom, how many
  cells);
* per-thread-pair totals (the classic [12] view, derivable by
  projection);
* per-routine fan-in/fan-out degrees, quantifying "limited interaction"
  (the [12] observation that widespread benchmarks communicate little
  and through few components).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.events import (
    AUXILIARY_EVENTS,
    Call,
    Event,
    KernelToUser,
    Read,
    Return,
    SwitchThread,
    UserToKernel,
    Write,
)

__all__ = ["CommunicationEdge", "CommunicationAnalyzer", "analyze_communication"]

#: pseudo-routine credited with kernel-produced values
KERNEL_PRODUCER = "<kernel>"
#: pseudo-routine for accesses outside any activation
OUTSIDE = "<outside>"


@dataclass(frozen=True)
class CommunicationEdge:
    """One producer-routine → consumer-routine communication channel."""

    producer: str
    consumer: str
    cells: int
    producer_thread: int
    consumer_thread: int


class CommunicationAnalyzer:
    """Builds the routine-level communication matrix from a trace."""

    def __init__(self, include_kernel: bool = True) -> None:
        self.include_kernel = include_kernel
        #: location -> (thread, routine) of the latest write
        self._producer: Dict[int, Tuple[int, str]] = {}
        #: thread -> routine-name call stack
        self._stacks: Dict[int, List[str]] = defaultdict(list)
        #: thread -> set of locations read since the last foreign write
        self._consumed: Dict[int, set] = defaultdict(set)
        #: (producer routine, consumer routine, p-thread, c-thread) -> cells
        self.matrix: Dict[Tuple[str, str, int, int], int] = defaultdict(int)

    # -- state ------------------------------------------------------------

    def _top(self, thread: int) -> str:
        stack = self._stacks[thread]
        return stack[-1] if stack else OUTSIDE

    # -- events ---------------------------------------------------------------

    def consume(self, event: Event) -> None:
        if isinstance(event, Read):
            self._on_read(event.thread, event.addr)
        elif isinstance(event, Write):
            self._producer[event.addr] = (event.thread, self._top(event.thread))
            self._consumed[event.thread].add(event.addr)
            for thread, consumed in self._consumed.items():
                if thread != event.thread:
                    consumed.discard(event.addr)
        elif isinstance(event, Call):
            self._stacks[event.thread].append(event.routine)
        elif isinstance(event, Return):
            stack = self._stacks[event.thread]
            if stack:
                stack.pop()
        elif isinstance(event, KernelToUser):
            if self.include_kernel:
                self._producer[event.addr] = (0, KERNEL_PRODUCER)
                for consumed in self._consumed.values():
                    consumed.discard(event.addr)
        elif isinstance(event, UserToKernel):
            self._on_read(event.thread, event.addr)
        elif isinstance(event, (SwitchThread, *AUXILIARY_EVENTS)):
            pass
        else:
            raise TypeError(f"unknown event: {event!r}")

    def _on_read(self, thread: int, addr: int) -> None:
        record = self._producer.get(addr)
        if record is None:
            return
        producer_thread, producer_routine = record
        if producer_thread == thread:
            return
        if addr in self._consumed[thread]:
            return  # already accounted since the producing write
        self._consumed[thread].add(addr)
        key = (
            producer_routine,
            self._top(thread),
            producer_thread,
            thread,
        )
        self.matrix[key] += 1

    def run(self, events: Iterable[Event]) -> "CommunicationAnalyzer":
        for event in events:
            self.consume(event)
        return self

    # -- views ------------------------------------------------------------------

    def edges(self, min_cells: int = 1) -> List[CommunicationEdge]:
        """All channels carrying at least ``min_cells``, heaviest first."""
        out = [
            CommunicationEdge(p, c, cells, pt, ct)
            for (p, c, pt, ct), cells in self.matrix.items()
            if cells >= min_cells
        ]
        out.sort(key=lambda e: (-e.cells, e.producer, e.consumer))
        return out

    def routine_matrix(self) -> Dict[Tuple[str, str], int]:
        """Producer routine → consumer routine totals (threads merged)."""
        merged: Dict[Tuple[str, str], int] = defaultdict(int)
        for (producer, consumer, _pt, _ct), cells in self.matrix.items():
            merged[(producer, consumer)] += cells
        return dict(merged)

    def thread_matrix(self) -> Dict[Tuple[int, int], int]:
        """Thread → thread totals — the Kalibera-et-al. [12] view."""
        merged: Dict[Tuple[int, int], int] = defaultdict(int)
        for (_p, _c, producer_thread, consumer_thread), cells in self.matrix.items():
            merged[(producer_thread, consumer_thread)] += cells
        return dict(merged)

    def fan_out(self) -> Dict[str, int]:
        """Per producer routine: number of distinct consumer routines."""
        consumers: Dict[str, set] = defaultdict(set)
        for producer, consumer in self.routine_matrix():
            consumers[producer].add(consumer)
        return {routine: len(c) for routine, c in consumers.items()}

    def fan_in(self) -> Dict[str, int]:
        """Per consumer routine: number of distinct producer routines."""
        producers: Dict[str, set] = defaultdict(set)
        for producer, consumer in self.routine_matrix():
            producers[consumer].add(producer)
        return {routine: len(p) for routine, p in producers.items()}

    def total_cells(self) -> int:
        return sum(self.matrix.values())


def analyze_communication(
    events: Iterable[Event], include_kernel: bool = True
) -> CommunicationAnalyzer:
    """One-shot analysis of a merged event trace."""
    return CommunicationAnalyzer(include_kernel=include_kernel).run(events)

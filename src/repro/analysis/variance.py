"""Cost-variance diagnostics: spotting under-measured input sizes.

Section 2.1, on Figure 6a: *"In our experiment we observed a high cost
variance for these rms values: this is a good indicator that some kind
of information might not be captured correctly."*  When many calls of
wildly different cost collapse onto one input-size value, the input
metric is probably blind to part of the workload — precisely what the
drms later reveals.

This module turns that remark into an automatic diagnostic: given a
routine profile, it flags *suspicious points* (input sizes whose
max/min cost ratio exceeds a threshold, with enough calls to matter)
and scores whole profiles, so a profiler run can end with a list of
"routines whose input sizes you should not trust".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.profiler import ProfileReport
from repro.core.profiles import RoutineProfile

__all__ = ["SuspiciousPoint", "suspicious_points", "suspicion_report"]


@dataclass(frozen=True)
class SuspiciousPoint:
    """One input-size value aggregating calls of very different cost."""

    routine: str
    input_size: int
    calls: int
    min_cost: int
    max_cost: int

    @property
    def spread(self) -> float:
        """max/min cost ratio (inf when the cheapest call was free)."""
        if self.min_cost <= 0:
            return float("inf")
        return self.max_cost / self.min_cost


def suspicious_points(
    profile: RoutineProfile,
    spread_threshold: float = 2.0,
    min_calls: int = 2,
) -> List[SuspiciousPoint]:
    """Points of one routine whose cost spread exceeds the threshold."""
    if spread_threshold < 1.0:
        raise ValueError("spread threshold below 1 is meaningless")
    flagged: List[SuspiciousPoint] = []
    for size, stats in sorted(profile.points.items()):
        if stats.calls < min_calls:
            continue
        if stats.min_cost <= 0:
            if stats.max_cost > 0:
                flagged.append(
                    SuspiciousPoint(
                        profile.routine,
                        size,
                        stats.calls,
                        stats.min_cost,
                        stats.max_cost,
                    )
                )
            continue
        if stats.max_cost / stats.min_cost >= spread_threshold:
            flagged.append(
                SuspiciousPoint(
                    profile.routine,
                    size,
                    stats.calls,
                    stats.min_cost,
                    stats.max_cost,
                )
            )
    return flagged


def suspicion_report(
    report: ProfileReport,
    spread_threshold: float = 2.0,
    min_calls: int = 2,
) -> Dict[str, List[SuspiciousPoint]]:
    """Suspicious points for every routine of a report (merged over
    threads), keyed by routine, worst spread first within each list."""
    out: Dict[str, List[SuspiciousPoint]] = {}
    for routine, profile in report.by_routine().items():
        flagged = suspicious_points(
            profile, spread_threshold=spread_threshold, min_calls=min_calls
        )
        if flagged:
            flagged.sort(key=lambda p: -p.spread)
            out[routine] = flagged
    return out

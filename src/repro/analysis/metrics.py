"""Evaluation metrics of Section 4.1.

Besides slowdown and space overhead, the paper evaluates aprof-drms with
four metrics, all implemented here over a pair of profiling reports (one
rms, one drms) or a single drms report:

1. **Routine profile richness** — ``(|drms_r| - |rms_r|) / |rms_r|``
   where ``|·|`` counts distinct input sizes collected for routine ``r``
   over all threads.  Positive when the drms yields more cost-plot
   points; can be (rarely) negative.

2. **Dynamic input volume** — ``1 - sum(rms) / sum(drms)`` over routine
   activations, in ``[0, 1)``; 0 when no dynamic input exists, close to
   1 when the input is almost entirely dynamic.  Computed globally and
   per routine (Figure 12 plots the per-routine distribution).

3. **Thread input** — percentage of induced first-reads due to
   multi-threading (line 2 of Figure 8's ``read``).

4. **External input** — percentage of induced first-reads due to kernel
   system calls.

The figures plot tail-distribution curves: *a point (x, y) on a curve
means that x% of routines have metric value at least y* —
:func:`tail_curve` produces exactly that series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.core.profiler import ProfileReport

__all__ = [
    "profile_richness",
    "dynamic_input_volume",
    "dynamic_input_volume_per_routine",
    "routine_input_shares",
    "induced_first_read_split",
    "tail_curve",
    "RoutineInputShare",
]


def _check_same_trace(rms_report: ProfileReport, drms_report: ProfileReport) -> None:
    if rms_report.policy.label() == drms_report.policy.label():
        raise ValueError(
            "expected reports from two different policies, got "
            f"{rms_report.policy.label()!r} twice"
        )


def profile_richness(
    rms_report: ProfileReport, drms_report: ProfileReport
) -> Dict[str, float]:
    """Per-routine profile richness (metric 1).

    Routines never observed by the rms pass are skipped (richness is
    undefined when ``|rms_r| = 0``; in practice both passes see the same
    activations, so this only guards malformed input).
    """
    _check_same_trace(rms_report, drms_report)
    rms_merged = rms_report.by_routine()
    drms_merged = drms_report.by_routine()
    richness: Dict[str, float] = {}
    for routine, rms_profile in rms_merged.items():
        drms_profile = drms_merged.get(routine)
        if drms_profile is None or rms_profile.distinct_sizes == 0:
            continue
        rms_points = rms_profile.distinct_sizes
        drms_points = drms_profile.distinct_sizes
        richness[routine] = (drms_points - rms_points) / rms_points
    return richness


def dynamic_input_volume(
    rms_report: ProfileReport, drms_report: ProfileReport
) -> float:
    """Whole-execution dynamic input volume (metric 2), in ``[0, 1)``."""
    _check_same_trace(rms_report, drms_report)
    total_rms = rms_report.profiles.total_input()
    total_drms = drms_report.profiles.total_input()
    if total_drms == 0:
        return 0.0
    return 1.0 - total_rms / total_drms


def dynamic_input_volume_per_routine(
    rms_report: ProfileReport, drms_report: ProfileReport
) -> Dict[str, float]:
    """Per-routine dynamic input volume (the Figure 12 distribution)."""
    _check_same_trace(rms_report, drms_report)
    rms_merged = rms_report.by_routine()
    drms_merged = drms_report.by_routine()
    volumes: Dict[str, float] = {}
    for routine, drms_profile in drms_merged.items():
        rms_profile = rms_merged.get(routine)
        if rms_profile is None or drms_profile.total_input == 0:
            volumes[routine] = 0.0
            continue
        volumes[routine] = 1.0 - rms_profile.total_input / drms_profile.total_input
    return volumes


@dataclass(frozen=True)
class RoutineInputShare:
    """First-read composition for one routine.

    Percentages are of the routine's total (possibly induced)
    first-reads, so ``plain + thread + external == 100`` whenever the
    routine performed any first-read at all.
    """

    routine: str
    first_reads: int
    thread_pct: float
    external_pct: float

    @property
    def induced_pct(self) -> float:
        return self.thread_pct + self.external_pct


def routine_input_shares(drms_report: ProfileReport) -> List[RoutineInputShare]:
    """Thread/external input percentages per routine (Figures 13 and 14),
    sorted by decreasing induced percentage."""
    shares: List[RoutineInputShare] = []
    for routine, (plain, thread_induced, kernel_induced) in sorted(
        drms_report.read_counters.items()
    ):
        total = plain + thread_induced + kernel_induced
        if total == 0:
            continue
        shares.append(
            RoutineInputShare(
                routine=routine,
                first_reads=total,
                thread_pct=100.0 * thread_induced / total,
                external_pct=100.0 * kernel_induced / total,
            )
        )
    shares.sort(key=lambda s: (-s.induced_pct, s.routine))
    return shares


def induced_first_read_split(drms_report: ProfileReport) -> Tuple[float, float]:
    """``(thread %, external %)`` of the total induced first-reads
    (one Figure 15 histogram bar; the two values sum to 100)."""
    thread_total, kernel_total = drms_report.total_induced()
    induced = thread_total + kernel_total
    if induced == 0:
        return 0.0, 0.0
    return 100.0 * thread_total / induced, 100.0 * kernel_total / induced


def tail_curve(
    values: Mapping[str, float], points: Sequence[float] = ()
) -> List[Tuple[float, float]]:
    """Tail-distribution curve over per-routine metric values.

    Returns ``(x, y)`` pairs where x% of routines have value >= y —
    the exact reading of Figures 11, 12 and 14.  With ``points`` given,
    the curve is sampled at those x percentages (e.g. the paper's 0.5,
    1, 2, 4, ... 64); otherwise one point per routine is returned.
    """
    ordered = sorted(values.values(), reverse=True)
    n = len(ordered)
    if n == 0:
        return []
    if points:
        curve = []
        for x in points:
            count = max(1, int(round(x / 100.0 * n)))
            if count > n:
                break
            curve.append((x, ordered[count - 1]))
        return curve
    return [(100.0 * (i + 1) / n, v) for i, v in enumerate(ordered)]

"""Plot data series and terminal rendering.

The benchmark harness regenerates each figure of the paper as data
(series of points / histogram bars) plus an ASCII rendering, so results
can be eyeballed directly in a terminal or diffed as text.  Nothing here
depends on a plotting library; series also export to CSV for external
plotting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

__all__ = [
    "Series",
    "ascii_scatter",
    "ascii_histogram",
    "stacked_histogram",
    "to_csv",
]


@dataclass
class Series:
    """A named sequence of (x, y) points."""

    name: str
    points: List[Tuple[float, float]] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        self.points.append((x, y))

    def xs(self) -> List[float]:
        return [x for x, _ in self.points]

    def ys(self) -> List[float]:
        return [y for _, y in self.points]

    def scaled(self, x_factor: float = 1.0, y_factor: float = 1.0) -> "Series":
        return Series(
            self.name,
            [(x * x_factor, y * y_factor) for x, y in self.points],
        )


def _bounds(values: Sequence[float]) -> Tuple[float, float]:
    lo, hi = min(values), max(values)
    if lo == hi:
        hi = lo + 1.0
    return lo, hi


def ascii_scatter(
    series_list: Sequence[Series],
    width: int = 64,
    height: int = 16,
    title: Optional[str] = None,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render one or more series as an ASCII scatter chart.

    Each series gets its own glyph; axes are annotated with min/max.
    """
    markers = "*o+x#@%&"
    all_points = [p for s in series_list for p in s.points]
    if not all_points:
        return "(no data)\n"
    x_lo, x_hi = _bounds([x for x, _ in all_points])
    y_lo, y_hi = _bounds([y for _, y in all_points])
    grid = [[" "] * width for _ in range(height)]
    for idx, series in enumerate(series_list):
        mark = markers[idx % len(markers)]
        for x, y in series.points:
            col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = int((y - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = mark
    lines = []
    if title:
        lines.append(title)
    legend = "  ".join(
        f"{markers[i % len(markers)]}={s.name}" for i, s in enumerate(series_list)
    )
    lines.append(legend)
    lines.append(f"{y_hi:>12.4g} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 12 + " │" + "".join(row))
    lines.append(f"{y_lo:>12.4g} ┤" + "".join(grid[-1]))
    lines.append(" " * 12 + " └" + "─" * width)
    lines.append(
        " " * 14 + f"{x_lo:<.4g}".ljust(width - 12) + f"{x_hi:>.4g}"
    )
    lines.append(" " * 14 + f"{x_label}  (y: {y_label})")
    return "\n".join(lines) + "\n"


def ascii_histogram(
    bars: Sequence[Tuple[str, float]],
    width: int = 50,
    title: Optional[str] = None,
    unit: str = "",
) -> str:
    """Render labelled horizontal bars (Figure 13/15 style)."""
    if not bars:
        return "(no data)\n"
    peak = max(value for _, value in bars) or 1.0
    label_width = max(len(label) for label, _ in bars)
    lines = []
    if title:
        lines.append(title)
    for label, value in bars:
        filled = int(round(value / peak * width))
        lines.append(
            f"{label:>{label_width}} │{'█' * filled}{' ' * (width - filled)}"
            f" {value:.1f}{unit}"
        )
    return "\n".join(lines) + "\n"


def stacked_histogram(
    bars: Sequence[Tuple[str, float, float]],
    width: int = 50,
    title: Optional[str] = None,
    legend: Tuple[str, str] = ("thread", "external"),
) -> str:
    """Two-component stacked bars summing to 100% (Figure 15 style)."""
    if not bars:
        return "(no data)\n"
    label_width = max(len(label) for label, _, _ in bars)
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{'':>{label_width}}  █={legend[0]}  ░={legend[1]}")
    for label, first, second in bars:
        total = first + second
        if total <= 0:
            lines.append(f"{label:>{label_width}} │ (no induced first-reads)")
            continue
        first_cells = int(round(first / 100.0 * width))
        second_cells = int(round(second / 100.0 * width))
        bar = "█" * first_cells + "░" * second_cells
        lines.append(
            f"{label:>{label_width}} │{bar:<{width}} "
            f"{first:5.1f}% / {second:5.1f}%"
        )
    return "\n".join(lines) + "\n"


def to_csv(series_list: Sequence[Series]) -> str:
    """Export series as CSV text (``series,x,y`` rows)."""
    lines = ["series,x,y"]
    for series in series_list:
        for x, y in series.points:
            lines.append(f"{series.name},{x},{y}")
    return "\n".join(lines) + "\n"

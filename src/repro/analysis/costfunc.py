"""Empirical cost-function estimation from performance points.

The point of drms profiling is to relate cost to input size so that the
*empirical cost function* of a routine can be estimated — and so that
spurious trends caused by under-estimated input sizes (the rms artefacts
of Figures 4 and 5) become visible.  This module fits worst-case cost
plots against the standard model family of asymptotic analysis:

    constant, log n, n, n log n, n^2, n^3, and free power laws a*n^b

selection is least-squares over the candidate models with an R^2 score,
plus a direct log-log slope estimate (:func:`powerlaw_exponent`) that the
benchmarks use to check statements like "the drms plot correctly
characterizes the linear cost trend, while the rms plot suggests a false
superlinear trend".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

__all__ = [
    "CostModel",
    "FitResult",
    "MODELS",
    "fit_model",
    "best_fit",
    "powerlaw_exponent",
    "classify_trend",
]


@dataclass(frozen=True)
class CostModel:
    """A one-parameter-family cost model ``cost ~ a + b * shape(n)``."""

    name: str
    shape: Callable[[float], float]

    def design_column(self, sizes: np.ndarray) -> np.ndarray:
        return np.array([self.shape(float(n)) for n in sizes])


def _safe_log(n: float) -> float:
    return math.log(n) if n > 1 else 0.0


MODELS: Tuple[CostModel, ...] = (
    CostModel("O(1)", lambda n: 0.0),
    CostModel("O(log n)", _safe_log),
    CostModel("O(n)", lambda n: n),
    CostModel("O(n log n)", lambda n: n * _safe_log(n)),
    CostModel("O(n^2)", lambda n: n * n),
    CostModel("O(n^3)", lambda n: n * n * n),
)


@dataclass(frozen=True)
class FitResult:
    """Outcome of fitting one model to a cost plot."""

    model: str
    intercept: float
    slope: float
    r_squared: float
    #: residual sum of squares, for model ranking
    rss: float

    def predict(self, n: float) -> float:
        model = next(m for m in MODELS if m.name == self.model)
        return self.intercept + self.slope * model.shape(n)


def _as_arrays(points: Sequence[Tuple[int, float]]) -> Tuple[np.ndarray, np.ndarray]:
    if len(points) < 2:
        raise ValueError(
            f"need at least 2 distinct points to fit a cost function, "
            f"got {len(points)} — this is exactly why profile richness "
            "matters (Section 4.1)"
        )
    sizes = np.array([float(n) for n, _cost in points])
    costs = np.array([float(cost) for _n, cost in points])
    return sizes, costs


def fit_model(
    points: Sequence[Tuple[int, float]], model: CostModel
) -> FitResult:
    """Least-squares fit of ``cost = a + b * shape(n)`` (b >= 0)."""
    sizes, costs = _as_arrays(points)
    column = model.design_column(sizes)
    if np.allclose(column, column[0]):
        # degenerate column (the constant model): fit intercept only
        intercept = float(np.mean(costs))
        slope = 0.0
        predicted = np.full_like(costs, intercept)
    else:
        design = np.column_stack([np.ones_like(column), column])
        coef, *_ = np.linalg.lstsq(design, costs, rcond=None)
        intercept, slope = float(coef[0]), float(coef[1])
        if slope < 0:
            # a decreasing cost model is meaningless here; fall back to
            # the constant fit so the model ranks poorly on growing data
            intercept = float(np.mean(costs))
            slope = 0.0
        predicted = intercept + slope * column
    residuals = costs - predicted
    rss = float(np.sum(residuals**2))
    tss = float(np.sum((costs - np.mean(costs)) ** 2))
    r_squared = 1.0 - rss / tss if tss > 0 else (1.0 if rss == 0 else 0.0)
    return FitResult(model.name, intercept, slope, r_squared, rss)


def best_fit(
    points: Sequence[Tuple[int, float]],
    models: Sequence[CostModel] = MODELS,
    tie_margin: float = 0.002,
) -> FitResult:
    """Pick the best-fitting model for a worst-case cost plot.

    Models are ranked by R^2; among models within ``tie_margin`` of the
    best score, the simplest one (earliest in the complexity-ordered
    candidate list) wins — the parsimony rule of the guess-ratio
    approach in [8], applied only to genuine near-ties so that e.g.
    O(n) beats O(n log n) on linear data without masking real
    super-linear growth.
    """
    fits = [fit_model(points, model) for model in models]
    best_score = max(fit.r_squared for fit in fits)
    for fit in fits:  # complexity order: first near-tie is simplest
        if fit.r_squared >= best_score - tie_margin:
            return fit
    raise AssertionError("unreachable: best_score is attained by some fit")


def powerlaw_exponent(points: Sequence[Tuple[int, float]]) -> float:
    """Log-log regression slope: the empirical growth exponent.

    ~1 for linear routines, ~2 for quadratic ones.  Only points with
    positive size and cost participate (log undefined otherwise).
    """
    usable = [(n, c) for n, c in points if n > 0 and c > 0]
    if len(usable) < 2:
        raise ValueError("need at least 2 positive points")
    sizes, costs = _as_arrays(usable)
    log_n = np.log(sizes)
    log_c = np.log(costs)
    if np.allclose(log_n, log_n[0]):
        raise ValueError("all input sizes equal; exponent undefined")
    slope, _intercept = np.polyfit(log_n, log_c, 1)
    return float(slope)


def classify_trend(points: Sequence[Tuple[int, float]]) -> Dict[str, float]:
    """Convenience bundle: best model name, its R^2, and the raw
    log-log exponent — what the figure benchmarks print per metric."""
    fit = best_fit(points)
    try:
        exponent = powerlaw_exponent(points)
    except ValueError:
        exponent = float("nan")
    return {"model": fit.model, "r_squared": fit.r_squared, "exponent": exponent}

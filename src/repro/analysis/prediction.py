"""Performance prediction from empirical cost functions.

The introduction's promise: estimating the cost function of individual
routines "can help developers predict the runtime on larger workloads".
This module packages that workflow:

* fit a routine's worst-case cost plot (:func:`predictor_for`);
* extrapolate to unseen input sizes with a crude trust annotation —
  how far beyond the observed range the query is, and how well the
  model fit the observations;
* validate a prediction against a later measurement
  (:func:`prediction_error`), which the mysql_scaling example and the
  test-suite use to demonstrate sub-percent extrapolation error on the
  Figure 4 workload.

Multiple runs can be combined before fitting (:func:`merge_reports`):
the PLDI'12 methodology explicitly supports collecting performance
points "from multiple or even single program runs".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.costfunc import FitResult, best_fit
from repro.core.profiler import ProfileReport
from repro.core.profiles import ProfileSet

__all__ = ["Predictor", "predictor_for", "prediction_error", "merge_reports"]


@dataclass(frozen=True)
class Predictor:
    """A fitted cost model for one routine, with its observation range."""

    routine: str
    fit: FitResult
    observed_min: int
    observed_max: int
    observations: int

    def predict(self, input_size: int) -> float:
        """Predicted worst-case cost at ``input_size``."""
        if input_size < 0:
            raise ValueError("input size must be non-negative")
        return self.fit.predict(input_size)

    def extrapolation_factor(self, input_size: int) -> float:
        """How far beyond the observed range the query lies (1.0 means
        inside the range; 4.0 means 4x the largest observed size)."""
        if self.observed_max <= 0:
            return float("inf")
        return max(1.0, input_size / self.observed_max)

    def is_trustworthy(
        self, input_size: int, max_factor: float = 16.0, min_r2: float = 0.95
    ) -> bool:
        """Crude trust gate: good fit, enough points, bounded reach."""
        return (
            self.observations >= 3
            and self.fit.r_squared >= min_r2
            and self.extrapolation_factor(input_size) <= max_factor
        )


def predictor_for(report: ProfileReport, routine: str) -> Predictor:
    """Fit the routine's merged worst-case cost plot."""
    plot = report.worst_case_plot(routine)
    fit = best_fit(plot)
    sizes = [size for size, _cost in plot]
    return Predictor(
        routine=routine,
        fit=fit,
        observed_min=min(sizes),
        observed_max=max(sizes),
        observations=len(plot),
    )


def prediction_error(
    predictor: Predictor, input_size: int, actual_cost: float
) -> float:
    """Relative error of the prediction against a measurement."""
    if actual_cost <= 0:
        raise ValueError("actual cost must be positive")
    return abs(predictor.predict(input_size) - actual_cost) / actual_cost


def merge_reports(reports: Sequence[ProfileReport]) -> ProfileReport:
    """Combine reports from multiple runs under the same policy.

    Performance points are unioned (max-cost aggregation per size), so
    fitting over the merged report sees every distinct input size any
    run observed.  Event/space counters are summed; read counters are
    summed component-wise.
    """
    if not reports:
        raise ValueError("need at least one report")
    policy_labels = {report.policy.label() for report in reports}
    if len(policy_labels) != 1:
        raise ValueError(
            f"cannot merge reports of different metrics: {policy_labels}"
        )
    merged_profiles = ProfileSet()
    merged_profiles.keep_activations = False
    merged_counters = {}
    for report in reports:
        for (routine, thread), profile in report.profiles:
            key = (routine, thread)
            existing = merged_profiles._profiles.get(key)
            if existing is None:
                merged_profiles._profiles[key] = profile.merged_with(
                    type(profile)(routine)
                )
            else:
                merged_profiles._profiles[key] = existing.merged_with(profile)
        for routine, counts in report.read_counters.items():
            slot = merged_counters.setdefault(routine, [0, 0, 0])
            for i in range(3):
                slot[i] += counts[i]
    return ProfileReport(
        policy=reports[0].policy,
        profiles=merged_profiles,
        read_counters=merged_counters,
        events=sum(r.events for r in reports),
        space_cells=max(r.space_cells for r in reports),
    )

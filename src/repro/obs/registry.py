"""Zero-dependency metrics registry: counters, gauges, log-scale histograms.

The registry is the single sink every layer reports through — the VM,
the profilers, and the measurement runner all publish into one
:class:`MetricsRegistry`, and the CLI renders it as a table, JSON, or
Prometheus text exposition.  Design constraints, in order:

1. **Near-zero overhead when disabled.**  The default everywhere is
   :data:`NULL_REGISTRY`, whose instruments are no-ops and whose
   ``enabled`` flag lets hot paths skip even the no-op call.  Layers
   with per-event hot loops (``consume_batch``) never call the registry
   per event at all — they keep plain-int state and *publish* coarse
   aggregates at snapshot time, so the enabled overhead is bounded too.
2. **No dependencies.**  Pure stdlib; importable from every layer
   without cycles (this package imports nothing from ``repro``).
3. **Label support without cardinality surprises.**  An instrument is
   keyed by ``(name, sorted(labels.items()))``; flattening uses the
   Prometheus-style ``name{k="v"}`` spelling.

Histograms use log2 bucketing: value ``v`` lands in bucket
``v.bit_length()`` (so 0 → bucket 0, 1 → bucket 1, 2..3 → bucket 2,
and ``2**63 - 1`` → bucket 63).  That gives fixed 65-slot storage over
the full non-negative int range with no configuration — the right shape
for latencies and size distributions whose interesting structure is
"which power of two".
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Tuple

__all__ = [
    "HISTOGRAM_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "bucket_index",
    "bucket_bounds",
    "flatten_key",
    "histogram_summaries_from_flat",
    "quantile_from_buckets",
]

#: buckets 0..64: index = value.bit_length(), capped for safety
HISTOGRAM_BUCKETS = 65

LabelItems = Tuple[Tuple[str, str], ...]


def bucket_index(value: int) -> int:
    """Log2 bucket for a non-negative int: ``value.bit_length()``.

    0 → 0, 1 → 1, 2..3 → 2, 4..7 → 3, …, ``2**63 - 1`` → 63.  Values
    wider than 64 bits all land in the last bucket rather than growing
    the table.
    """
    if value < 0:
        raise ValueError(f"histogram values must be >= 0, got {value}")
    index = value.bit_length()
    return index if index < HISTOGRAM_BUCKETS else HISTOGRAM_BUCKETS - 1


def flatten_key(name: str, labels: LabelItems) -> str:
    """``name`` or ``name{k=v,...}`` — the stable flat-dict spelling."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """Last-set value (can go up or down; ``set`` is idempotent, which
    is what lets publish-style snapshots run repeatedly without
    double-counting)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def max(self, value) -> None:
        if value > self.value:
            self.value = value


class Histogram:
    """Fixed-width log2-bucket histogram over non-negative ints."""

    __slots__ = ("name", "labels", "buckets", "count", "sum")

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self.buckets = [0] * HISTOGRAM_BUCKETS
        self.count = 0
        self.sum = 0

    def observe(self, value: int) -> None:
        self.buckets[bucket_index(value)] += 1
        self.count += 1
        self.sum += value

    def nonzero_buckets(self) -> List[Tuple[int, int]]:
        """``[(bucket_index, count), ...]`` for populated buckets."""
        return [(i, n) for i, n in enumerate(self.buckets) if n]

    def quantile(self, q: float) -> float:
        """Estimate the q-quantile (0..1) from the log2 buckets."""
        return quantile_from_buckets(self.nonzero_buckets(), self.count, q)

    def quantiles(self, qs=(0.5, 0.9, 0.99)) -> List[float]:
        buckets = self.nonzero_buckets()
        return [quantile_from_buckets(buckets, self.count, q) for q in qs]


def bucket_bounds(index: int) -> Tuple[int, int]:
    """Inclusive ``[lo, hi]`` value range covered by a log2 bucket."""
    if index <= 0:
        return (0, 0)
    return (2 ** (index - 1), 2**index - 1)


def quantile_from_buckets(
    nonzero: List[Tuple[int, int]], count: int, q: float
) -> float:
    """q-quantile estimated from ``[(bucket_index, count), ...]``.

    Walks the cumulative distribution and interpolates linearly within
    the chosen bucket's value range — the standard Prometheus-style
    histogram_quantile estimate, specialised to the log2 layout where
    bucket ``i`` covers ``[2^(i-1), 2^i - 1]`` (bucket 0 is exactly 0).
    """
    if count <= 0 or not nonzero:
        return 0.0
    q = min(max(q, 0.0), 1.0)
    target = q * count
    cumulative = 0
    for index, n in nonzero:
        previous = cumulative
        cumulative += n
        if cumulative >= target:
            lo, hi = bucket_bounds(index)
            if n == 0 or hi == lo:
                return float(lo)
            fraction = (target - previous) / n
            return lo + fraction * (hi - lo)
    lo, hi = bucket_bounds(nonzero[-1][0])
    return float(hi)


def histogram_summaries_from_flat(
    metrics: Mapping[str, object], qs=(0.5, 0.9, 0.99)
) -> Dict[str, Dict[str, float]]:
    """Reconstruct per-histogram quantile summaries from ``as_dict()``.

    Given the flat ``{"name{k=v}": value}`` mapping (as served by
    ``/metrics.json`` or written by ``repro stats --json``), groups the
    ``name_bucket{...,le=2^i}`` keys back into histograms and returns
    ``{base_key: {"count": .., "sum": .., "p50": .., ...}}`` where
    ``base_key`` is the histogram's flat name with labels.
    """
    buckets: Dict[Tuple[str, LabelItems], List[Tuple[int, int]]] = {}
    counts: Dict[str, int] = {}
    sums: Dict[str, object] = {}
    for key, value in metrics.items():
        name, labels = _parse_flat_key(key)
        if name.endswith("_count"):
            counts[flatten_key(name[: -len("_count")], labels)] = int(value)
        elif name.endswith("_sum"):
            sums[flatten_key(name[: -len("_sum")], labels)] = value
        elif name.endswith("_bucket"):
            le = dict(labels).get("le", "")
            if not le.startswith("2^"):
                continue
            base_labels = tuple(kv for kv in labels if kv[0] != "le")
            buckets.setdefault(
                (name[: -len("_bucket")], base_labels), []
            ).append((int(le[2:]), int(value)))
    out: Dict[str, Dict[str, float]] = {}
    for (name, labels), pairs in buckets.items():
        base = flatten_key(name, labels)
        count = counts.get(base, sum(n for _, n in pairs))
        pairs.sort()
        summary: Dict[str, float] = {
            "count": count,
            "sum": sums.get(base, 0),
        }
        for q in qs:
            summary[f"p{int(q * 100)}"] = quantile_from_buckets(
                pairs, count, q
            )
        out[base] = summary
    return out


def _parse_flat_key(key: str) -> Tuple[str, LabelItems]:
    """Invert :func:`flatten_key`: ``name{k=v,...}`` → (name, labels)."""
    if not key.endswith("}") or "{" not in key:
        return key, ()
    name, _, inner = key[:-1].partition("{")
    labels = []
    for part in inner.split(","):
        k, _, v = part.partition("=")
        labels.append((k, v))
    return name, tuple(labels)


def _label_items(labels: Optional[Mapping[str, object]]) -> LabelItems:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Keyed store of instruments; get-or-create semantics.

    ``counter``/``gauge``/``histogram`` return the live instrument, so
    hot-ish call sites can hoist the lookup out of their loop and pay
    only an attribute call per update.
    """

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelItems], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelItems], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelItems], Histogram] = {}

    # -- instrument access ------------------------------------------------

    def counter(
        self, name: str, labels: Optional[Mapping[str, object]] = None
    ) -> Counter:
        key = (name, _label_items(labels))
        inst = self._counters.get(key)
        if inst is None:
            inst = self._counters[key] = Counter(*key)
        return inst

    def gauge(
        self, name: str, labels: Optional[Mapping[str, object]] = None
    ) -> Gauge:
        key = (name, _label_items(labels))
        inst = self._gauges.get(key)
        if inst is None:
            inst = self._gauges[key] = Gauge(*key)
        return inst

    def histogram(
        self, name: str, labels: Optional[Mapping[str, object]] = None
    ) -> Histogram:
        key = (name, _label_items(labels))
        inst = self._histograms.get(key)
        if inst is None:
            inst = self._histograms[key] = Histogram(*key)
        return inst

    # -- iteration / export -----------------------------------------------

    def counters(self) -> Iterator[Counter]:
        return iter(self._counters.values())

    def gauges(self) -> Iterator[Gauge]:
        return iter(self._gauges.values())

    def histograms(self) -> Iterator[Histogram]:
        return iter(self._histograms.values())

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def as_dict(self) -> Dict[str, object]:
        """Flatten to ``{"name{k=v}": value}``, sorted by key.

        Counters and gauges map to their value; a histogram ``h`` maps
        to ``h.count`` under ``name_count``, ``h.sum`` under
        ``name_sum``, and its populated buckets under
        ``name_bucket{le=2^i}`` keys.  Pure data — safe to compare with
        ``==`` across runs, which is what the equivalence tests do.
        """
        out: Dict[str, object] = {}
        for counter in self._counters.values():
            out[flatten_key(counter.name, counter.labels)] = counter.value
        for gauge in self._gauges.values():
            out[flatten_key(gauge.name, gauge.labels)] = gauge.value
        for hist in self._histograms.values():
            base = flatten_key(hist.name, hist.labels)
            out[base + "_count"] = hist.count
            out[base + "_sum"] = hist.sum
            for index, n in hist.nonzero_buckets():
                bucket_labels = hist.labels + (("le", f"2^{index}"),)
                out[flatten_key(hist.name + "_bucket", bucket_labels)] = n
        return dict(sorted(out.items()))

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4).

        Metric names are sanitised (``.`` and other illegal characters
        → ``_``); histogram buckets are emitted *cumulatively* with the
        conventional trailing ``le="+Inf"`` bucket, plus ``_sum`` and
        ``_count`` series.
        """
        lines: List[str] = []

        def prom_name(name: str) -> str:
            cleaned = "".join(
                ch if (ch.isalnum() or ch in "_:") else "_" for ch in name
            )
            if cleaned and cleaned[0].isdigit():
                cleaned = "_" + cleaned
            return cleaned or "_"

        def prom_labels(labels: LabelItems, extra: str = "") -> str:
            parts = [f'{prom_name(k)}="{_escape(v)}"' for k, v in labels]
            if extra:
                parts.append(extra)
            return "{" + ",".join(parts) + "}" if parts else ""

        def _escape(value: str) -> str:
            return (
                value.replace("\\", "\\\\")
                .replace('"', '\\"')
                .replace("\n", "\\n")
            )

        def series(kind: str, items) -> None:
            by_name: Dict[str, List] = {}
            for inst in items:
                by_name.setdefault(inst.name, []).append(inst)
            for name in sorted(by_name):
                pname = prom_name(name)
                lines.append(f"# TYPE {pname} {kind}")
                for inst in by_name[name]:
                    value = inst.value
                    if isinstance(value, float):
                        rendered = repr(value)
                    else:
                        rendered = str(value)
                    lines.append(f"{pname}{prom_labels(inst.labels)} {rendered}")

        series("counter", self._counters.values())
        series("gauge", self._gauges.values())

        by_name: Dict[str, List[Histogram]] = {}
        for hist in self._histograms.values():
            by_name.setdefault(hist.name, []).append(hist)
        for name in sorted(by_name):
            pname = prom_name(name)
            lines.append(f"# TYPE {pname} histogram")
            for hist in by_name[name]:
                cumulative = 0
                for index, n in hist.nonzero_buckets():
                    cumulative += n
                    upper = float(2**index - 1) if index else 0.0
                    le = 'le="%s"' % upper
                    lines.append(
                        f"{pname}_bucket{prom_labels(hist.labels, le)}"
                        f" {cumulative}"
                    )
                le_inf = 'le="+Inf"'
                lines.append(
                    f"{pname}_bucket{prom_labels(hist.labels, le_inf)}"
                    f" {hist.count}"
                )
                lines.append(
                    f"{pname}_sum{prom_labels(hist.labels)} {hist.sum}"
                )
                lines.append(
                    f"{pname}_count{prom_labels(hist.labels)} {hist.count}"
                )
        return "\n".join(lines) + "\n"


class _NullInstrument:
    """Shared no-op counter/gauge/histogram."""

    __slots__ = ()
    name = ""
    labels: LabelItems = ()
    value = 0
    count = 0
    sum = 0

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def max(self, value) -> None:
        pass

    def observe(self, value: int) -> None:
        pass

    def nonzero_buckets(self) -> List[Tuple[int, int]]:
        return []


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """The disabled default: every instrument is the shared no-op.

    ``enabled`` is ``False`` so instrumented layers can skip whole
    blocks of bookkeeping (per-opcode counting, scheduler wrapping)
    rather than merely making each call cheap.
    """

    enabled = False

    def counter(self, name, labels=None) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name, labels=None) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name, labels=None) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def counters(self):
        return iter(())

    def gauges(self):
        return iter(())

    def histograms(self):
        return iter(())

    def __len__(self) -> int:
        return 0

    def as_dict(self) -> Dict[str, object]:
        return {}

    def to_prometheus(self) -> str:
        return "\n"


#: shared process-wide no-op registry; the default everywhere
NULL_REGISTRY = NullRegistry()

"""Span tracing to Chrome trace-event JSON (Perfetto-viewable).

A :class:`SpanTracer` records named wall-clock intervals ("complete"
events, phase ``X``) and point-in-time markers ("instant" events, phase
``i``) in the `Chrome Trace Event format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_,
which both ``chrome://tracing`` and https://ui.perfetto.dev load
directly.  Timestamps are microseconds from the tracer's creation, so
traces start at t=0 regardless of host epoch.

Use as a context manager around interesting phases::

    tracer = SpanTracer()
    with tracer.span("replay", tool="aprof-drms"):
        ...
    tracer.save("run.trace.json")

The disabled default is :data:`NULL_TRACER`: ``span`` is a reusable
no-op context manager, so instrumented code needs no ``if`` guards.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Dict, List, Optional

__all__ = ["SpanTracer", "NullTracer", "NULL_TRACER"]


class SpanTracer:
    """Collects Chrome trace events with µs timestamps from creation."""

    enabled = True

    def __init__(self, process_name: str = "repro") -> None:
        self._origin = time.perf_counter()
        self.process_name = process_name
        self.events: List[Dict[str, object]] = []

    def _now_us(self) -> int:
        return int((time.perf_counter() - self._origin) * 1_000_000)

    @contextmanager
    def span(self, name: str, track: str = "main", **args):
        """Time a block as a complete ("X") event on the given track."""
        start = self._now_us()
        try:
            yield self
        finally:
            end = self._now_us()
            event: Dict[str, object] = {
                "name": name,
                "ph": "X",
                "ts": start,
                "dur": end - start,
                "pid": 1,
                "tid": track,
            }
            if args:
                event["args"] = {k: _jsonable(v) for k, v in args.items()}
            self.events.append(event)

    def instant(self, name: str, track: str = "main", **args) -> None:
        """Record a point-in-time marker ("i" event)."""
        event: Dict[str, object] = {
            "name": name,
            "ph": "i",
            "ts": self._now_us(),
            "s": "t",
            "pid": 1,
            "tid": track,
        }
        if args:
            event["args"] = {k: _jsonable(v) for k, v in args.items()}
        self.events.append(event)

    def to_chrome(self) -> Dict[str, object]:
        """The full JSON-object form of the trace."""
        meta = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 1,
                "args": {"name": self.process_name},
            }
        ]
        return {
            "traceEvents": meta + self.events,
            "displayTimeUnit": "ms",
        }

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_chrome(), fh, indent=1)

    def __len__(self) -> int:
        return len(self.events)


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


class _NullSpan:
    """Reusable no-op context manager."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled default: spans cost one attribute call and no allocation."""

    enabled = False
    events: List[Dict[str, object]] = []

    def span(self, name: str, track: str = "main", **args) -> _NullSpan:
        return _NULL_SPAN

    def instant(self, name: str, track: str = "main", **args) -> None:
        pass

    def to_chrome(self) -> Dict[str, object]:
        return {"traceEvents": [], "displayTimeUnit": "ms"}

    def save(self, path: str) -> None:
        pass

    def __len__(self) -> int:
        return 0


#: shared process-wide no-op tracer; the default everywhere
NULL_TRACER = NullTracer()

"""Span tracing to Chrome trace-event JSON (Perfetto-viewable).

A :class:`SpanTracer` records named wall-clock intervals ("complete"
events, phase ``X``), point-in-time markers ("instant" events, phase
``i``), and counter samples (phase ``C``) in the `Chrome Trace Event
format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_,
which both ``chrome://tracing`` and https://ui.perfetto.dev load
directly.

Timestamps come from a **monotonic clock anchored once to the epoch**:
at construction the tracer captures ``time.time()`` and
``time.perf_counter()`` as a pair, and every later timestamp is
``anchor_epoch + (perf_counter() - anchor_perf)`` in microseconds.
Spans therefore can never go backwards if the wall clock is adjusted
mid-run, while remaining comparable across processes (each process's
residual offset is just its wall-clock error at anchor time, which the
distributed merger corrects via the coordinator handshake — see
:mod:`repro.obs.distributed`).  The anchor pair is exposed as
:attr:`anchor_epoch_us` / :attr:`anchor_perf` and recorded in the
export header.

Use as a context manager around interesting phases::

    tracer = SpanTracer()
    with tracer.span("replay", tool="aprof-drms"):
        ...
    tracer.save("run.trace.json")

The disabled default is :data:`NULL_TRACER`: ``span`` is a reusable
no-op context manager, so instrumented code needs no ``if`` guards.

Two optional attachments feed the distributed-tracing layer:

* ``sink`` — an object with an ``emit(event)`` method (a
  :class:`repro.obs.distributed.SpanSidecar`); every recorded event is
  also streamed there, crash-safely, as it happens.
* ``flight`` — a :class:`repro.obs.distributed.FlightRecorder`; every
  recorded event is mirrored into its bounded ring buffer.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Dict, List, Optional

__all__ = ["SpanTracer", "NullTracer", "NULL_TRACER"]


class SpanTracer:
    """Collects Chrome trace events with epoch-anchored µs timestamps."""

    enabled = True

    def __init__(self, process_name: str = "repro") -> None:
        # Anchor once: epoch + perf_counter captured back to back.  All
        # timestamps derive from perf_counter (monotonic), offset to the
        # epoch so cross-process alignment is well-defined.
        self.anchor_epoch_us = int(time.time() * 1_000_000)
        self.anchor_perf = time.perf_counter()
        self.process_name = process_name
        self.events: List[Dict[str, object]] = []
        self.sink = None  # optional SpanSidecar
        self.flight = None  # optional FlightRecorder

    def now_us(self) -> int:
        """Epoch-anchored monotonic timestamp in microseconds."""
        elapsed = time.perf_counter() - self.anchor_perf
        return self.anchor_epoch_us + int(elapsed * 1_000_000)

    # kept as the internal spelling used by span()/instant()
    _now_us = now_us

    def _emit(self, event: Dict[str, object]) -> None:
        self.events.append(event)
        if self.sink is not None:
            self.sink.emit(event)
        if self.flight is not None:
            self.flight.record(event)

    @contextmanager
    def span(self, name: str, track: str = "main", **args):
        """Time a block as a complete ("X") event on the given track."""
        start = self._now_us()
        try:
            yield self
        finally:
            end = self._now_us()
            event: Dict[str, object] = {
                "name": name,
                "ph": "X",
                "ts": start,
                "dur": end - start,
                "pid": 1,
                "tid": track,
            }
            if args:
                event["args"] = {k: _jsonable(v) for k, v in args.items()}
            self._emit(event)

    def instant(self, name: str, track: str = "main", **args) -> None:
        """Record a point-in-time marker ("i" event)."""
        event: Dict[str, object] = {
            "name": name,
            "ph": "i",
            "ts": self._now_us(),
            "s": "t",
            "pid": 1,
            "tid": track,
        }
        if args:
            event["args"] = {k: _jsonable(v) for k, v in args.items()}
        self._emit(event)

    def counter(self, name: str, value, track: str = "main", **extra) -> None:
        """Record a counter sample ("C" event) — a counter-track point.

        ``value`` may be a number (series named after the counter) or
        several series may be given via ``extra`` keyword samples.
        """
        series: Dict[str, object] = {}
        if isinstance(value, dict):
            series.update({k: _jsonable(v) for k, v in value.items()})
        else:
            series[name.rsplit(".", 1)[-1]] = _jsonable(value)
        for k, v in extra.items():
            series[k] = _jsonable(v)
        event: Dict[str, object] = {
            "name": name,
            "ph": "C",
            "ts": self._now_us(),
            "pid": 1,
            "tid": track,
            "args": series,
        }
        self._emit(event)

    def emit_raw(self, event: Dict[str, object]) -> None:
        """Append a pre-built Chrome event verbatim (flight dumps)."""
        self._emit(event)

    def clock_header(self) -> Dict[str, object]:
        """The clock-anchor record stored in export headers."""
        return {
            "anchor_epoch_us": self.anchor_epoch_us,
            "clock": "perf_counter",
        }

    def to_chrome(self) -> Dict[str, object]:
        """The full JSON-object form of the trace."""
        meta = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 1,
                "args": {"name": self.process_name},
            }
        ]
        return {
            "traceEvents": meta + self.events,
            "displayTimeUnit": "ms",
            "metadata": self.clock_header(),
        }

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_chrome(), fh, indent=1)

    def __len__(self) -> int:
        return len(self.events)


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


class _NullSpan:
    """Reusable no-op context manager."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled default: spans cost one attribute call and no allocation."""

    enabled = False
    events: List[Dict[str, object]] = []
    sink = None
    flight = None

    def span(self, name: str, track: str = "main", **args) -> _NullSpan:
        return _NULL_SPAN

    def instant(self, name: str, track: str = "main", **args) -> None:
        pass

    def counter(self, name: str, value, track: str = "main", **extra) -> None:
        pass

    def emit_raw(self, event: Dict[str, object]) -> None:
        pass

    def to_chrome(self) -> Dict[str, object]:
        return {"traceEvents": [], "displayTimeUnit": "ms"}

    def save(self, path: str) -> None:
        pass

    def __len__(self) -> int:
        return 0


#: shared process-wide no-op tracer; the default everywhere
NULL_TRACER = NullTracer()

"""Cross-process distributed tracing: context, sidecars, merge, flight.

The service (PR 7) and the partition pool (PR 6) spread one logical
job across many OS processes, so a single in-memory
:class:`~repro.obs.spans.SpanTracer` can never see the whole timeline.
This module adds the four pieces that stitch it back together:

**TraceContext** — ``trace_id`` / ``parent_span_id`` generated at job
submit and propagated through the service HTTP protocol (lease /
heartbeat / complete / fail bodies) and through partition-pool task
payloads, so every process records spans under the job's trace.

**SpanSidecar** — a crash-safe per-process append-only span log
(``*.spans.jsonl``).  Every line is CRC-framed exactly in the spirit of
the service journal (``crc32-hex SPACE canonical-json``), flushed per
event, so a SIGKILL at any byte leaves a *mergeable prefix*: the reader
keeps the longest valid prefix and reports the torn tail instead of
failing.

**merge_job_trace / validate_chrome_trace** — the offline merger.  It
reads every sidecar in a directory, keeps the records belonging to one
job's trace, aligns clocks (each sidecar header carries its process's
perf_counter/epoch anchor plus the coordinator-handshake offset
measured at lease time), assigns one Chrome ``pid`` per process and one
``tid`` per track, and emits a single Perfetto-loadable Chrome trace
JSON with counter tracks passed through.  ``validate_chrome_trace``
schema-checks the result (used by tests and CI).

**FlightRecorder** — a bounded in-memory ring buffer of the last N
span/counter events plus explicitly noted metric deltas.  On
Degradation, worker death, or doctor-detected corruption, the ring is
dumped as a single ``flight-recorder`` instant event into the tracer
(and hence the sidecar), preserving the last moments before trouble.

Clock-alignment safety argument (short form; DESIGN.md §14 has the
full version): within a process, timestamps are monotonic because they
derive from ``perf_counter``.  Across processes, each sidecar's header
stores the process's epoch anchor, and workers additionally store
``handshake_offset_us`` — their own epoch-anchored "now" minus the
coordinator's, sampled from the lease response.  Subtracting that
offset maps worker timestamps onto the coordinator's clock, bounding
cross-process skew by one HTTP round trip rather than by NTP drift.
"""

from __future__ import annotations

import collections
import json
import os
import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "TraceContext",
    "SpanSidecar",
    "SidecarReplay",
    "read_sidecar",
    "sidecar_path",
    "FlightRecorder",
    "flight_dump",
    "merge_job_trace",
    "validate_chrome_trace",
]

SIDECAR_SUFFIX = ".spans.jsonl"
SIDECAR_VERSION = 1


def _new_id(nbytes: int = 8) -> str:
    return os.urandom(nbytes).hex()


# ---------------------------------------------------------------------------
# trace context
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TraceContext:
    """Identity of one distributed trace, propagated across processes.

    Wire form (``to_dict``/``from_dict``) is a flat JSON object so it
    rides inside service HTTP bodies and pool task payloads unchanged.
    """

    trace_id: str
    job: str = ""
    worker: str = ""
    parent_span_id: str = ""
    spans_dir: str = ""

    @classmethod
    def new_root(cls, job: str = "") -> "TraceContext":
        return cls(trace_id=_new_id(), job=job, parent_span_id="")

    def child(self, worker: str = "", spans_dir: str = "") -> "TraceContext":
        """Derive the context handed to a downstream process."""
        return TraceContext(
            trace_id=self.trace_id,
            job=self.job,
            worker=worker or self.worker,
            parent_span_id=_new_id(4),
            spans_dir=spans_dir or self.spans_dir,
        )

    def to_dict(self) -> Dict[str, str]:
        out = {"trace_id": self.trace_id}
        for key in ("job", "worker", "parent_span_id", "spans_dir"):
            value = getattr(self, key)
            if value:
                out[key] = value
        return out

    @classmethod
    def from_dict(cls, data: Optional[Mapping[str, object]]) -> Optional["TraceContext"]:
        if not data or not data.get("trace_id"):
            return None
        return cls(
            trace_id=str(data["trace_id"]),
            job=str(data.get("job", "")),
            worker=str(data.get("worker", "")),
            parent_span_id=str(data.get("parent_span_id", "")),
            spans_dir=str(data.get("spans_dir", "")),
        )


# ---------------------------------------------------------------------------
# span sidecar: CRC-framed JSON lines, torn-tail tolerant
# ---------------------------------------------------------------------------


def _frame_line(record: Mapping[str, object]) -> bytes:
    payload = json.dumps(
        record, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    return b"%08x %s\n" % (crc, payload)


def sidecar_path(
    spans_dir: str, process: str, pid: Optional[int] = None
) -> str:
    """Canonical sidecar filename for one process."""
    pid = os.getpid() if pid is None else pid
    safe = "".join(
        ch if (ch.isalnum() or ch in "._-") else "_" for ch in process
    )
    return os.path.join(spans_dir, f"{safe}.pid{pid}{SIDECAR_SUFFIX}")


class SpanSidecar:
    """Append-only, per-process crash-safe span log.

    The first record is a header (process name, trace context, pid,
    clock anchor); events and later clock records append behind it.
    Each line is independently CRC-framed and flushed, so the file is
    readable up to the last complete line no matter where the process
    died.
    """

    def __init__(
        self,
        path: str,
        *,
        process: str,
        trace: Optional[TraceContext] = None,
        anchor_epoch_us: int = 0,
        worker: str = "",
    ) -> None:
        self.path = path
        self.process = process
        self.trace = trace
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        self._fh = open(path, "ab")
        header: Dict[str, object] = {
            "type": "header",
            "version": SIDECAR_VERSION,
            "process": process,
            "worker": worker or (trace.worker if trace else ""),
            "pid": os.getpid(),
            "anchor_epoch_us": int(anchor_epoch_us),
        }
        if trace is not None:
            header["trace"] = trace.to_dict()
        self._write(header)

    def _write(self, record: Mapping[str, object]) -> None:
        self._fh.write(_frame_line(record))
        self._fh.flush()

    def emit(self, event: Mapping[str, object]) -> None:
        """Stream one Chrome event (called by SpanTracer for each)."""
        self._write({"type": "event", "ev": event})

    def clock_sync(self, handshake_offset_us: int, source: str = "lease") -> None:
        """Record the coordinator-handshake clock offset.

        ``handshake_offset_us`` is *this* process's epoch-anchored time
        minus the coordinator's, as sampled from the lease response.
        Appended (not rewritten into the header) to keep the file
        strictly append-only.
        """
        self._write(
            {
                "type": "clock",
                "handshake_offset_us": int(handshake_offset_us),
                "source": source,
            }
        )

    def close(self) -> None:
        try:
            self._fh.close()
        except OSError:
            pass

    def __enter__(self) -> "SpanSidecar":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


@dataclass
class SidecarReplay:
    """Result of reading one sidecar file."""

    path: str
    header: Dict[str, object] = field(default_factory=dict)
    events: List[Dict[str, object]] = field(default_factory=list)
    handshake_offset_us: int = 0
    records: int = 0
    torn_tail_bytes: int = 0

    @property
    def process(self) -> str:
        return str(self.header.get("process", os.path.basename(self.path)))

    @property
    def worker(self) -> str:
        return str(self.header.get("worker", ""))

    @property
    def trace_id(self) -> str:
        trace = self.header.get("trace") or {}
        if isinstance(trace, dict):
            return str(trace.get("trace_id", ""))
        return ""


def read_sidecar(path: str) -> SidecarReplay:
    """Replay a sidecar, keeping the longest valid prefix.

    Any framing violation — short line, bad CRC, malformed JSON —
    terminates the replay at the previous record; everything from the
    first bad byte onward counts as the torn tail.  A SIGKILL mid-flush
    therefore costs at most the event being written.
    """
    replay = SidecarReplay(path=path)
    with open(path, "rb") as fh:
        data = fh.read()
    pos = 0
    size = len(data)
    while pos < size:
        newline = data.find(b"\n", pos)
        if newline < 0:
            break  # last line never got its newline: torn mid-flush
        record = _decode_line(data[pos:newline])
        if record is None:
            break  # bad CRC / malformed frame: stop at valid prefix
        pos = newline + 1
        replay.records += 1
        rtype = record.get("type")
        if rtype == "header" and not replay.header:
            replay.header = record
        elif rtype == "event":
            event = record.get("ev")
            if isinstance(event, dict):
                replay.events.append(event)
        elif rtype == "clock":
            replay.handshake_offset_us = int(
                record.get("handshake_offset_us", 0)
            )
    replay.torn_tail_bytes = size - pos
    return replay


def _decode_line(raw: bytes) -> Optional[Dict[str, object]]:
    if len(raw) < 10 or raw[8:9] != b" ":
        return None
    try:
        want = int(raw[:8], 16)
    except ValueError:
        return None
    payload = raw[9:]
    if (zlib.crc32(payload) & 0xFFFFFFFF) != want:
        return None
    try:
        record = json.loads(payload)
    except (ValueError, UnicodeDecodeError):
        return None
    return record if isinstance(record, dict) else None


# ---------------------------------------------------------------------------
# flight recorder
# ---------------------------------------------------------------------------


class FlightRecorder:
    """Bounded ring buffer of recent span events and metric deltas.

    Attach to a :class:`SpanTracer` (``attach``) and every recorded
    event is mirrored here; ``note`` adds out-of-band entries (metric
    deltas, state changes).  ``dump`` freezes the ring into a single
    ``flight-recorder`` instant event on the tracer — and therefore
    into the sidecar — so the last moments before a Degradation,
    worker death, or corruption detection survive in the merged trace.
    """

    def __init__(self, capacity: int = 128) -> None:
        self.capacity = capacity
        self._ring: "collections.deque" = collections.deque(maxlen=capacity)
        self.dumps = 0

    def attach(self, tracer) -> "FlightRecorder":
        if getattr(tracer, "enabled", False):
            tracer.flight = self
        return self

    def record(self, event: Mapping[str, object]) -> None:
        if event.get("name") == "flight-recorder":
            return  # never recursively capture our own dumps
        self._ring.append(dict(event))

    def note(self, kind: str, **fields) -> None:
        entry: Dict[str, object] = {"name": kind, "ph": "note"}
        entry.update(fields)
        self._ring.append(entry)

    def snapshot(self) -> List[Dict[str, object]]:
        return list(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def dump(self, tracer, reason: str, **extra) -> Optional[Dict[str, object]]:
        """Emit the ring as one instant event; returns the event."""
        if not getattr(tracer, "enabled", False):
            return None
        self.dumps += 1
        args: Dict[str, object] = {
            "reason": reason,
            "records": self.snapshot(),
            "capacity": self.capacity,
            "dump": self.dumps,
        }
        for key, value in extra.items():
            args[key] = value
        event: Dict[str, object] = {
            "name": "flight-recorder",
            "ph": "i",
            "ts": tracer.now_us(),
            "s": "p",
            "pid": 1,
            "tid": "flight",
            "args": args,
        }
        tracer.emit_raw(event)
        return event


def flight_dump(tracer, reason: str, **extra) -> Optional[Dict[str, object]]:
    """Dump the tracer's attached flight recorder, if any.

    The uniform hook used at Degradation sites: a no-op unless the
    caller's tracer is enabled *and* has a recorder attached, so hot
    paths need no guards.
    """
    flight = getattr(tracer, "flight", None)
    if flight is None:
        return None
    return flight.dump(tracer, reason, **extra)


# ---------------------------------------------------------------------------
# merger: sidecars -> one Chrome trace per job
# ---------------------------------------------------------------------------


def discover_sidecars(spans_dir: str) -> List[str]:
    if not os.path.isdir(spans_dir):
        return []
    out = []
    for name in sorted(os.listdir(spans_dir)):
        if name.endswith(SIDECAR_SUFFIX):
            out.append(os.path.join(spans_dir, name))
    return out


def _belongs_to(event: Mapping[str, object], trace_id: str, job: str) -> bool:
    args = event.get("args")
    if isinstance(args, dict):
        if args.get("trace_id") == trace_id:
            return True
        if job and args.get("job") == job:
            return True
    return False


def merge_job_trace(
    spans_dir: str,
    *,
    trace_id: str,
    job: str = "",
    extra_metadata: Optional[Mapping[str, object]] = None,
) -> Dict[str, object]:
    """Merge every sidecar in ``spans_dir`` into one job's Chrome trace.

    Sidecars whose header carries the job's trace context contribute
    all their events (they are per-job by construction: workers and
    partition processes open one sidecar per lease).  Shared sidecars —
    the coordinator's — contribute only events tagged with the job's
    ``trace_id``/``job`` in their args.  Each contributing process gets
    its own Chrome ``pid`` (coordinator first, then workers sorted by
    name) with ``process_name`` metadata; track names become stable
    integer ``tid``s with ``thread_name`` metadata.  Worker timestamps
    are shifted by the recorded handshake offset onto the coordinator's
    clock, then the whole trace is rebased so it starts at t=0.
    """
    replays = [read_sidecar(p) for p in discover_sidecars(spans_dir)]
    picked: List[Tuple[SidecarReplay, List[Dict[str, object]]]] = []
    for replay in replays:
        if replay.trace_id == trace_id:
            events = list(replay.events)
        else:
            # Shared (coordinator) sidecars contribute events tagged
            # with the job's trace plus every counter sample — queue
            # depth and lease renewals are coordinator-global tracks.
            events = [
                ev
                for ev in replay.events
                if _belongs_to(ev, trace_id, job) or ev.get("ph") == "C"
            ]
        if events or replay.trace_id == trace_id:
            picked.append((replay, events))

    # Stable process ordering: coordinator-ish first, then by name.
    def sort_key(item):
        replay = item[0]
        is_worker = 1 if replay.trace_id else 0
        return (is_worker, replay.process, replay.path)

    picked.sort(key=sort_key)

    out_events: List[Dict[str, object]] = []
    clock_meta: List[Dict[str, object]] = []
    tid_maps: List[Dict[str, int]] = []
    min_ts: Optional[int] = None

    for pid, (replay, events) in enumerate(picked, start=1):
        offset = replay.handshake_offset_us
        tid_map: Dict[str, int] = {}
        tid_maps.append(tid_map)
        clock_meta.append(
            {
                "process": replay.process,
                "pid": pid,
                "source": os.path.basename(replay.path),
                "anchor_epoch_us": replay.header.get("anchor_epoch_us", 0),
                "handshake_offset_us": offset,
                "torn_tail_bytes": replay.torn_tail_bytes,
            }
        )
        for event in events:
            ev = dict(event)
            ev["pid"] = pid
            track = str(ev.get("tid", "main"))
            if track not in tid_map:
                tid_map[track] = len(tid_map)
            ev["tid"] = tid_map[track]
            ts = ev.get("ts")
            if isinstance(ts, (int, float)):
                ev["ts"] = int(ts) - offset
                if min_ts is None or ev["ts"] < min_ts:
                    min_ts = ev["ts"]
            out_events.append(ev)

    base = min_ts or 0
    for ev in out_events:
        if isinstance(ev.get("ts"), (int, float)):
            ev["ts"] = int(ev["ts"]) - base

    meta_events: List[Dict[str, object]] = []
    for pid, (replay, _events) in enumerate(picked, start=1):
        meta_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "args": {"name": replay.process},
            }
        )
        for track, tid in sorted(
            tid_maps[pid - 1].items(), key=lambda kv: kv[1]
        ):
            meta_events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": track},
                }
            )

    metadata: Dict[str, object] = {
        "trace_id": trace_id,
        "job": job,
        "generator": "repro trace-export",
        "base_epoch_us": base,
        "processes": clock_meta,
    }
    if extra_metadata:
        metadata.update(dict(extra_metadata))
    return {
        "traceEvents": meta_events + out_events,
        "displayTimeUnit": "ms",
        "metadata": metadata,
    }


# ---------------------------------------------------------------------------
# schema check
# ---------------------------------------------------------------------------

_KNOWN_PHASES = {"X", "i", "I", "C", "M", "B", "E"}


def validate_chrome_trace(doc) -> List[str]:
    """Schema-check a merged Chrome trace; returns a list of problems.

    Empty list ⇒ valid.  Checks the invariants Perfetto's JSON importer
    relies on: ``traceEvents`` is a non-empty list of objects, every
    event has a known phase, complete events carry non-negative
    ``ts``/``dur`` and integer ``pid``/``tid``, counter events carry
    numeric series, and metadata events are well-formed.
    """
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        return ["traceEvents missing, not a list, or empty"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in _KNOWN_PHASES:
            problems.append(f"{where}: unknown phase {phase!r}")
            continue
        if phase == "M":
            if not event.get("name") or not isinstance(
                event.get("args"), dict
            ):
                problems.append(f"{where}: malformed metadata event")
            continue
        if not event.get("name"):
            problems.append(f"{where}: missing name")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: bad ts {ts!r}")
        if not isinstance(event.get("pid"), int):
            problems.append(f"{where}: non-integer pid")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: bad dur {dur!r}")
        if phase == "C":
            args = event.get("args")
            if not isinstance(args, dict) or not args:
                problems.append(f"{where}: counter without series")
            elif not all(
                isinstance(v, (int, float)) for v in args.values()
            ):
                problems.append(f"{where}: non-numeric counter series")
    return problems

"""``repro.obs`` — zero-dependency telemetry: metrics + span tracing.

This package is the observability spine of the reproduction: a
:class:`MetricsRegistry` (counters, gauges, log2-bucket histograms)
that the VM, the profilers, and the measurement runner publish into,
and a :class:`SpanTracer` that emits Chrome trace-event JSON viewable
in Perfetto.  It imports nothing from the rest of ``repro`` so every
layer can depend on it without cycles, and its disabled defaults
(:data:`NULL_REGISTRY`, :data:`NULL_TRACER`) are near-free so telemetry
costs ~nothing unless switched on.  See DESIGN.md §9.
"""

from repro.obs.registry import (
    HISTOGRAM_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    bucket_index,
    flatten_key,
)
from repro.obs.spans import NULL_TRACER, NullTracer, SpanTracer

__all__ = [
    "HISTOGRAM_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "NullTracer",
    "NULL_TRACER",
    "SpanTracer",
    "bucket_index",
    "flatten_key",
]

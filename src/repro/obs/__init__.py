"""``repro.obs`` — zero-dependency telemetry: metrics + span tracing.

This package is the observability spine of the reproduction: a
:class:`MetricsRegistry` (counters, gauges, log2-bucket histograms)
that the VM, the profilers, and the measurement runner publish into,
and a :class:`SpanTracer` that emits Chrome trace-event JSON viewable
in Perfetto.  ``repro.obs.distributed`` extends the tracer across
process boundaries: trace contexts propagated through the service and
partition pool, crash-safe per-process span sidecars, a per-job
Perfetto merger with clock alignment, and a flight recorder dumped on
failures.  The package imports nothing from the rest of ``repro`` so
every layer can depend on it without cycles, and its disabled defaults
(:data:`NULL_REGISTRY`, :data:`NULL_TRACER`) are near-free so telemetry
costs ~nothing unless switched on.  See DESIGN.md §9 and §14.
"""

from repro.obs.distributed import (
    FlightRecorder,
    SidecarReplay,
    SpanSidecar,
    TraceContext,
    flight_dump,
    merge_job_trace,
    read_sidecar,
    sidecar_path,
    validate_chrome_trace,
)
from repro.obs.registry import (
    HISTOGRAM_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    bucket_bounds,
    bucket_index,
    flatten_key,
    histogram_summaries_from_flat,
    quantile_from_buckets,
)
from repro.obs.spans import NULL_TRACER, NullTracer, SpanTracer

__all__ = [
    "HISTOGRAM_BUCKETS",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "NullTracer",
    "NULL_TRACER",
    "SidecarReplay",
    "SpanSidecar",
    "SpanTracer",
    "TraceContext",
    "bucket_bounds",
    "bucket_index",
    "flatten_key",
    "flight_dump",
    "histogram_summaries_from_flat",
    "merge_job_trace",
    "quantile_from_buckets",
    "read_sidecar",
    "sidecar_path",
    "validate_chrome_trace",
]

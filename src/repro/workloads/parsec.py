"""Synthetic PARSEC 2.1 suite.

Each function models one PARSEC benchmark's communication structure on
the ``simlarge``-like default scale, parameterised by thread count (the
paper spawns four threads per benchmark for Table 1 and sweeps 1-8 for
Figure 16).  The mapping benchmark → structure follows the application
domains PARSEC documents and the behaviours the paper reports:

========================  =====================================================
benchmark                 model
========================  =====================================================
blackscholes              Monte-Carlo pricing, tiny shared input
bodytrack                 fork-join vision rounds + per-frame disk input
canneal                   stencil-ish cache-aware annealing over a shared net
dedup                     pipeline with disk I/O + shared dedup table (the
                          richness champion of Figure 11)
ferret                    similarity-search pipeline with disk I/O
fluidanimate              halo-exchange stencil (thread input dominates)
streamcluster             fork-join clustering rounds over streamed points
facesim                   face physics: mesh stencil + assembly rounds
freqmine                  itemset mining over streamed transactions
raytrace                  tile rendering against a shared acceleration tree
swaptions                 Monte-Carlo swaption pricing, minimal sharing
vips                      the image pipeline of Section 2.1 (Figures 5/6)
x264                      frame pipeline: disk frames + inter-thread motion
                          vectors
========================  =====================================================
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.vm import Machine
from repro.workloads.kernels import (
    fork_join_kernel,
    montecarlo_kernel,
    pipeline_io_kernel,
    stencil_kernel,
)
from repro.workloads.vips import vips_pipeline

__all__ = ["PARSEC_BENCHMARKS", "build_parsec"]


def blackscholes(threads: int = 4, scale: int = 1) -> Machine:
    machine = Machine()
    montecarlo_kernel(
        machine,
        "blackscholes",
        workers=threads,
        trials=10 * scale,
        params=12,
        io_cells=20 * scale,  # the options portfolio file
    )
    return machine


def bodytrack(threads: int = 4, scale: int = 1) -> Machine:
    machine = Machine()
    fork_join_kernel(
        machine,
        "bodytrack",
        workers=threads,
        rounds=3 * scale,
        chunk_size=16,
        compute_blocks=4,
        io_cells=10,  # a camera frame header per round
    )
    return machine


def canneal(threads: int = 4, scale: int = 1) -> Machine:
    machine = Machine()
    stencil_kernel(
        machine,
        "canneal",
        workers=threads,
        cells_per_worker=12,
        iterations=3 * scale,
        compute_blocks=3,
    )
    fork_join_kernel(
        machine, "canneal_route", workers=threads, rounds=scale, chunk_size=8
    )
    return machine


def dedup(threads: int = 4, scale: int = 1) -> Machine:
    machine = Machine()
    # one pipeline per pair of threads, distinct seeds => many distinct
    # chunk sizes and a long profile-richness tail
    pipelines = max(1, threads // 2)
    for p in range(pipelines):
        pipeline_io_kernel(
            machine,
            f"dedup{p}" if pipelines > 1 else "dedup",
            items=14 * scale,
            max_rounds=12,
            seed=p,
        )
    return machine


def ferret(threads: int = 4, scale: int = 1) -> Machine:
    machine = Machine()
    pipeline_io_kernel(
        machine, "ferret", items=10 * scale, max_rounds=8, dedup_slots=16, seed=3
    )
    fork_join_kernel(
        machine, "ferret_rank", workers=max(1, threads - 3),
        rounds=scale, chunk_size=8,
    )
    return machine


def fluidanimate(threads: int = 4, scale: int = 1) -> Machine:
    machine = Machine()
    stencil_kernel(
        machine,
        "fluidanimate",
        workers=threads,
        cells_per_worker=16,
        iterations=4 * scale,
        compute_blocks=2,
    )
    return machine


def facesim(threads: int = 4, scale: int = 1) -> Machine:
    """Physics simulation of a human face: iterative solver over a
    partitioned mesh — stencil-like halo traffic plus fork-join
    assembly rounds."""
    machine = Machine()
    stencil_kernel(
        machine,
        "facesim_solve",
        workers=threads,
        cells_per_worker=14,
        iterations=3 * scale,
        compute_blocks=4,
    )
    fork_join_kernel(
        machine,
        "facesim_assemble",
        workers=threads,
        rounds=2 * scale,
        chunk_size=12,
        compute_blocks=3,
    )
    return machine


def freqmine(threads: int = 4, scale: int = 1) -> Machine:
    """Frequent itemset mining: transactions streamed from disk into a
    shared FP-tree-ish structure — fork-join rounds with file input."""
    machine = Machine()
    fork_join_kernel(
        machine,
        "freqmine",
        workers=threads,
        rounds=3 * scale,
        chunk_size=18,
        compute_blocks=3,
        io_cells=12,  # the transaction database
    )
    return machine


def raytrace(threads: int = 4, scale: int = 1) -> Machine:
    """Real-time raytracing: workers render tiles against a shared,
    master-built acceleration structure (mostly read-shared input,
    heavy compute)."""
    machine = Machine()
    fork_join_kernel(
        machine,
        "raytrace",
        workers=threads,
        rounds=2 * scale,
        chunk_size=16,
        compute_blocks=7,
    )
    montecarlo_kernel(
        machine,
        "raytrace_shade",
        workers=max(1, threads // 2),
        trials=8 * scale,
        params=6,
        compute_blocks=5,
    )
    return machine


def streamcluster(threads: int = 4, scale: int = 1) -> Machine:
    machine = Machine()
    fork_join_kernel(
        machine,
        "streamcluster",
        workers=threads,
        rounds=3 * scale,
        chunk_size=20,
        compute_blocks=2,
        io_cells=6,  # stream window refill
    )
    return machine


def swaptions(threads: int = 4, scale: int = 1) -> Machine:
    machine = Machine()
    montecarlo_kernel(
        machine,
        "swaptions",
        workers=threads,
        trials=14 * scale,
        params=6,
        compute_blocks=8,
        io_cells=4,  # a small swaption spec file
    )
    return machine


def vips(threads: int = 4, scale: int = 1) -> Machine:
    tile_counts = tuple(4 * (i + 1) for i in range(2 + scale))
    return vips_pipeline(tile_counts=tile_counts, wbuffer_calls=10 * scale)


def x264(threads: int = 4, scale: int = 1) -> Machine:
    machine = Machine()
    pipeline_io_kernel(
        machine, "x264_encode", items=12 * scale, max_rounds=10, seed=9
    )
    stencil_kernel(
        machine,
        "x264_motion",
        workers=max(2, threads - 3),
        cells_per_worker=10,
        iterations=2 * scale,
    )
    return machine


PARSEC_BENCHMARKS: Dict[str, Callable[..., Machine]] = {
    "blackscholes": blackscholes,
    "bodytrack": bodytrack,
    "canneal": canneal,
    "dedup": dedup,
    "facesim": facesim,
    "ferret": ferret,
    "fluidanimate": fluidanimate,
    "freqmine": freqmine,
    "raytrace": raytrace,
    "streamcluster": streamcluster,
    "swaptions": swaptions,
    "vips": vips,
    "x264": x264,
}


def build_parsec(
    name: str, threads: int = 4, scale: int = 1
) -> Machine:
    """Instantiate a PARSEC benchmark by name."""
    if name not in PARSEC_BENCHMARKS:
        raise KeyError(
            f"unknown PARSEC benchmark {name!r}; "
            f"known: {sorted(PARSEC_BENCHMARKS)}"
        )
    return PARSEC_BENCHMARKS[name](threads=threads, scale=scale)

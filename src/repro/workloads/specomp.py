"""Synthetic SPEC OMP2012 suite.

SPEC OMP2012 collects fourteen OpenMP applications from different
science domains; the paper runs them on the *train* workloads.  OpenMP
codes share one structure — fork-join parallel regions over shared
arrays written by the master (or the previous region) — which is why
the paper finds them "naturally clustered" with thread input above 69%
in Figure 15.  Each model below is a :func:`fork_join_kernel`
configuration (plus a wavefront for Smith-Waterman and a tree search
for kdtree), with per-benchmark parameters varying the round count,
chunk size, arithmetic intensity and the (small) amount of file input.
"""

from __future__ import annotations

import random
from typing import Callable, Dict

from repro.vm import Barrier, Machine
from repro.workloads.kernels import fork_join_kernel, wavefront_kernel

__all__ = ["SPECOMP_BENCHMARKS", "build_specomp"]


def _fork_join_benchmark(
    name: str,
    rounds: int,
    chunk_size: int,
    compute_blocks: int,
    io_cells: int = 0,
):
    def build(threads: int = 4, scale: int = 1) -> Machine:
        machine = Machine()
        fork_join_kernel(
            machine,
            name,
            workers=threads,
            rounds=rounds * scale,
            chunk_size=chunk_size,
            compute_blocks=compute_blocks,
            io_cells=io_cells,
            seed=hash(name) % 1000,
        )
        return machine

    build.__name__ = name
    return build


def smithwa(threads: int = 4, scale: int = 1) -> Machine:
    """Smith-Waterman sequence alignment: anti-diagonal wavefront."""
    machine = Machine()
    wavefront_kernel(
        machine,
        "smithwa",
        workers=threads,
        size=8 * (1 + scale),
        passes=2 + scale,
        compute_blocks=2,
    )
    return machine


def kdtree(threads: int = 4, scale: int = 1) -> Machine:
    """k-d tree build + parallel query rounds.

    Each round the master (re)builds a binary tree in a shared array and
    worker threads descend it for pseudo-random queries, recording their
    results in a shared result table that the master then aggregates.
    Worker node visits of freshly rebuilt nodes and the master's sweep
    over worker-written results are thread-induced first-reads — the
    high thread-input profile Figure 14 shows for kdtree.
    """
    machine = Machine()
    depth = 6 + scale
    nodes = (1 << depth) - 1
    rounds = 2 + scale
    queries = 6 * scale
    tree = machine.memory.alloc(nodes, "kdtree_nodes")
    results = machine.memory.alloc(threads, "kdtree_results")
    for wid in range(threads):
        machine.memory.store(results + wid, 0)
    round_barrier = Barrier(threads + 1, "kdtree_round")

    def build_tree(ctx, salt):
        for i in range(nodes):
            ctx.write(tree + i, (i * 2654435761 + salt * 97) % 10_000)
        return nodes
        yield  # pragma: no cover

    def search(ctx, key):
        index = 0
        visited = 0
        while index < nodes:
            value = ctx.read(tree + index)
            ctx.compute(1)
            visited += 1
            if value == key:
                break
            index = 2 * index + (1 if key > value else 2)
        return visited
        yield  # pragma: no cover

    def collect_results(ctx):
        total = 0
        for wid in range(threads):
            total += ctx.read(results + wid)
            ctx.compute(1)
        return total
        yield  # pragma: no cover

    def master(ctx):
        total = 0
        for r in range(rounds):
            yield from ctx.call(build_tree, r, name="kdtree_build")
            yield from round_barrier.wait(ctx)  # release the queriers
            yield from round_barrier.wait(ctx)  # wait for their results
            total += yield from ctx.call(collect_results, name="kdtree_collect")
        return total

    def query_worker(ctx, wid):
        rng = random.Random(wid)
        for _r in range(rounds):
            yield from round_barrier.wait(ctx)
            hits = 0
            for _q in range(queries):
                hits += yield from ctx.call(
                    search, rng.randint(0, 10_000), name="kdtree_search"
                )
                yield
            ctx.write(results + wid, hits)
            yield from round_barrier.wait(ctx)
        return None

    machine.spawn(master, name="kdtree_master")
    for wid in range(threads):
        machine.spawn(query_worker, wid, name=f"kdtree_query{wid}")
    return machine


#: the fourteen SPEC OMP2012 applications
SPECOMP_BENCHMARKS: Dict[str, Callable[..., Machine]] = {
    "md": _fork_join_benchmark("md", rounds=4, chunk_size=18, compute_blocks=5),
    "bwaves": _fork_join_benchmark(
        "bwaves", rounds=3, chunk_size=24, compute_blocks=4
    ),
    "nab": _fork_join_benchmark(
        "nab", rounds=4, chunk_size=20, compute_blocks=6, io_cells=2
    ),
    "bt331": _fork_join_benchmark(
        "bt331", rounds=3, chunk_size=22, compute_blocks=4
    ),
    "botsalgn": _fork_join_benchmark(
        "botsalgn", rounds=4, chunk_size=14, compute_blocks=3, io_cells=3
    ),
    "botsspar": _fork_join_benchmark(
        "botsspar", rounds=3, chunk_size=16, compute_blocks=3
    ),
    "ilbdc": _fork_join_benchmark(
        "ilbdc", rounds=4, chunk_size=26, compute_blocks=2
    ),
    "fma3d": _fork_join_benchmark(
        "fma3d", rounds=3, chunk_size=20, compute_blocks=4, io_cells=2
    ),
    "swim": _fork_join_benchmark(
        "swim", rounds=4, chunk_size=28, compute_blocks=2
    ),
    "imagick": _fork_join_benchmark(
        "imagick", rounds=3, chunk_size=24, compute_blocks=5, io_cells=4
    ),
    "mgrid331": _fork_join_benchmark(
        "mgrid331", rounds=4, chunk_size=20, compute_blocks=3
    ),
    "applu331": _fork_join_benchmark(
        "applu331", rounds=3, chunk_size=22, compute_blocks=4
    ),
    "smithwa": smithwa,
    "kdtree": kdtree,
}


def build_specomp(name: str, threads: int = 4, scale: int = 1) -> Machine:
    """Instantiate a SPEC OMP2012 benchmark by name."""
    if name not in SPECOMP_BENCHMARKS:
        raise KeyError(
            f"unknown SPEC OMP2012 benchmark {name!r}; "
            f"known: {sorted(SPECOMP_BENCHMARKS)}"
        )
    return SPECOMP_BENCHMARKS[name](threads=threads, scale=scale)

"""Reusable parallel kernels: the building blocks of the synthetic suites.

The paper evaluates on PARSEC 2.1 and SPEC OMP2012 — dozens of native
applications we obviously cannot re-run.  What the evaluation actually
measures, though, is how each application's *communication structure*
(who writes data that whom later reads, and how much arrives from the
kernel) shows up in the drms metrics.  Each kernel below reproduces one
archetypal structure; :mod:`repro.workloads.parsec` and
:mod:`repro.workloads.specomp` compose them with per-benchmark
parameters.

* :func:`fork_join_kernel` — OpenMP-style rounds: a master writes the
  shared input, workers process chunks of it (thread input), a barrier
  joins, the master reduces the workers' partial results (thread input
  again).  The backbone of the SPEC OMP2012 models.
* :func:`wavefront_kernel` — anti-diagonal dynamic programming
  (Smith-Waterman): workers read matrix cells computed by neighbours.
* :func:`pipeline_io_kernel` — read-from-disk / transform / dedup-store /
  write-to-disk pipeline (dedup, ferret, x264): mixes external and
  thread input and produces highly variable per-call input sizes.
* :func:`montecarlo_kernel` — embarrassingly parallel simulation over a
  small shared parameter block (swaptions, blackscholes): little
  dynamic input of either kind.
* :func:`stencil_kernel` — grid relaxation with halo exchange
  (fluidanimate): thread input proportional to partition boundaries.

Every kernel spawns its own threads on the machine it is given and uses
distinct routine names prefixed with the benchmark name, so suite-level
metrics see a realistic routine population.
"""

from __future__ import annotations

import random

from repro.vm import Barrier, FileDevice, Machine, Mutex, Semaphore, SinkDevice

__all__ = [
    "fork_join_kernel",
    "wavefront_kernel",
    "pipeline_io_kernel",
    "montecarlo_kernel",
    "stencil_kernel",
]


def fork_join_kernel(
    machine: Machine,
    name: str,
    workers: int = 4,
    rounds: int = 4,
    chunk_size: int = 24,
    compute_blocks: int = 3,
    io_cells: int = 0,
    seed: int = 0,
) -> None:
    """OpenMP-style fork-join rounds over a shared array.

    Each round the master rewrites the shared input array (one chunk per
    worker), workers process their chunk and write partial results, and
    after a barrier the master reduces the partials.  All worker reads of
    the input and all master reads of the partials are thread-induced
    first-reads, which is what pushes SPEC OMP-style codes above 69%
    thread input in Figure 15.  ``io_cells > 0`` adds a per-round
    parameter refresh from disk (external input).
    """
    n = workers * chunk_size
    shared = machine.memory.alloc(n, f"{name}_input")
    partials = machine.memory.alloc(workers, f"{name}_partials")
    barrier = Barrier(workers + 1, f"{name}_barrier")
    params_fd = None
    params_buf = None
    if io_cells > 0:
        params_fd = machine.kernel.open(FileDevice(list(range(10_000))))
        params_buf = machine.memory.alloc(io_cells, f"{name}_params")
    rng = random.Random(seed)

    def process_chunk(ctx, wid):
        acc = 0
        base = shared + wid * chunk_size
        for i in range(chunk_size):
            acc += ctx.read(base + i)
            ctx.compute(compute_blocks)
        ctx.write(partials + wid, acc)
        return acc
        yield  # pragma: no cover

    def worker(ctx, wid):
        for _round in range(rounds):
            yield from barrier.wait(ctx)  # wait for the master's data
            yield from ctx.call(process_chunk, wid, name=f"{name}_chunk")
            yield from barrier.wait(ctx)  # publish the partial
            yield

    def refresh_params(ctx, round_index):
        """Reload the parameter file into the reused buffer.

        The number of refills varies per round, so this routine's drms
        takes several distinct values while its rms stays pinned at the
        buffer size — the (small) richness contribution file-reading
        OpenMP codes show in Figure 11.
        """
        refills = 1 + round_index % 3
        total = 0
        for r in range(refills):
            offset = (round_index * 3 + r) * io_cells
            got = ctx.sys_pread64(params_fd, params_buf, io_cells, offset=offset)
            for i in range(got):
                total += ctx.read(params_buf + i)
        return total
        yield  # pragma: no cover

    def reduce_partials(ctx):
        total = 0
        for wid in range(workers):
            total += ctx.read(partials + wid)
            ctx.compute(1)
        return total
        yield  # pragma: no cover

    def master(ctx):
        total = 0
        for round_index in range(rounds):
            if io_cells > 0:
                yield from ctx.call(
                    refresh_params, round_index, name=f"{name}_refresh"
                )
            for i in range(n):
                ctx.write(shared + i, rng.randint(0, 997))
            yield from barrier.wait(ctx)  # release workers
            yield from barrier.wait(ctx)  # wait for partials
            total += yield from ctx.call(reduce_partials, name=f"{name}_reduce")
            yield
        return total

    machine.spawn(master, name=f"{name}_master")
    for wid in range(workers):
        machine.spawn(worker, wid, name=f"{name}_worker{wid}")


def wavefront_kernel(
    machine: Machine,
    name: str,
    workers: int = 4,
    size: int = 16,
    passes: int = 3,
    compute_blocks: int = 2,
) -> None:
    """Anti-diagonal DP sweeps (Smith-Waterman style).

    ``passes`` sequence pairs are aligned over the *same* reused
    ``size x size`` score matrix, striped across ``workers`` by row
    blocks; cell (i, j) needs (i-1, j), (i, j-1) and (i-1, j-1).
    Reads crossing a stripe boundary hit cells computed by another
    worker — dense thread input — and because the matrix is reused
    across passes, each worker's long-running activation re-reads
    boundary cells rewritten since the previous pass: drms grows with
    ``passes`` while the rms stays pinned at the stripe footprint,
    giving smithwa its high dynamic input volume in Figure 12.
    """
    matrix = machine.memory.alloc(size * size, f"{name}_matrix")
    ready = [
        [Semaphore(0, f"{name}_p{p}r{i}") for i in range(size)]
        for p in range(passes)
    ]
    done = Barrier(workers, f"{name}_pass_barrier")
    rows_per_worker = max(1, size // workers)

    def score_cell(ctx, i, j, salt):
        above = ctx.read(matrix + (i - 1) * size + j) if i > 0 else 0
        left = ctx.read(matrix + i * size + j - 1) if j > 0 else 0
        diag = ctx.read(matrix + (i - 1) * size + j - 1) if i > 0 and j > 0 else 0
        ctx.compute(compute_blocks)
        value = max(above, left, diag) + ((i * 7 + j * 13 + salt) % 5)
        ctx.write(matrix + i * size + j, value)
        return value
        yield  # pragma: no cover

    def load_border(ctx, row):
        """Import the neighbouring stripe's frontier row — every read is
        a thread-induced first-read (the row was computed by another
        worker this pass)."""
        total = 0
        for j in range(size):
            total += ctx.read(matrix + row * size + j)
            ctx.compute(1)
        return total
        yield  # pragma: no cover

    def align_stripe(ctx, wid, p):
        lo = wid * rows_per_worker
        hi = size if wid == workers - 1 else (wid + 1) * rows_per_worker
        for i in range(lo, hi):
            if i > 0:
                # wait for the previous row of this pass to be complete
                yield from ready[p][i - 1].wait(ctx)
                ready[p][i - 1].signal(ctx)  # leave it signalled for others
            if i == lo and lo > 0:
                yield from ctx.call(load_border, lo - 1, name=f"{name}_border")
            for j in range(size):
                yield from ctx.call(score_cell, i, j, p, name=f"{name}_cell")
            ready[p][i].signal(ctx)
            yield

    def stripe_worker(ctx, wid):
        for p in range(passes):
            yield from ctx.call(align_stripe, wid, p, name=f"{name}_align")
            yield from done.wait(ctx)
            yield

    for wid in range(workers):
        machine.spawn(stripe_worker, wid, name=f"{name}_stripe{wid}")


def pipeline_io_kernel(
    machine: Machine,
    name: str,
    items: int = 24,
    max_rounds: int = 12,
    block_size: int = 4,
    dedup_slots: int = 32,
    seed: int = 0,
) -> None:
    """Disk-in / transform / dedup-store / disk-out pipeline.

    Item ``i`` consists of ``1 + (i*7 + seed) % max_rounds`` fixed-size
    blocks.  The reader streams each block from disk into a reused
    chunk buffer (external input) and relays it, block by block, through
    a fixed relay buffer to the transform stage (thread input).  Both
    per-item routines (``fetch_chunk`` and ``process_item``) therefore
    touch a *constant* set of cells — their rms collapses — while their
    drms varies with the item's block count: exactly the structure that
    gives dedup its tall profile-richness tail in Figure 11.  The
    transform stage additionally consults a shared, mutex-guarded dedup
    table and hands unique digests to the writer, which pushes them out
    (``userToKernel``).
    """
    rng = random.Random(seed)
    in_fd = machine.kernel.open(
        FileDevice([rng.randint(0, 255) for _ in range(200_000)])
    )
    out_fd = machine.kernel.open(SinkDevice())
    chunk_buf = machine.memory.alloc(block_size, f"{name}_chunk")
    relay = machine.memory.alloc(block_size, f"{name}_relay")
    head = machine.memory.alloc(2, f"{name}_head")
    machine.memory.store(head, 0)
    machine.memory.store(head + 1, 0)
    table = machine.memory.alloc(dedup_slots, f"{name}_table")
    for i in range(dedup_slots):
        machine.memory.store(table + i, -1)
    table_lock = Mutex(f"{name}_table_lock")
    relay_free = Semaphore(1, f"{name}_relay_free")
    relay_full = Semaphore(0, f"{name}_relay_full")
    head_free = Semaphore(1, f"{name}_head_free")
    head_full = Semaphore(0, f"{name}_head_full")
    to_write = Semaphore(0, f"{name}_to_write")
    write_free = Semaphore(1, f"{name}_write_free")
    out_cell = machine.memory.alloc(1, f"{name}_out")
    machine.memory.store(out_cell, 0)
    rounds = [1 + (i * 7 + seed) % max_rounds for i in range(items)]

    def fetch_chunk(ctx, item, n_rounds):
        """Stream one item from disk, relaying block by block."""
        position = sum(rounds[:item]) * block_size
        for r in range(n_rounds):
            got = ctx.sys_pread64(
                in_fd, chunk_buf, block_size, offset=position + r * block_size
            )
            yield from relay_free.wait(ctx)
            for cell in range(got):
                ctx.write(relay + cell, ctx.read(chunk_buf + cell))
            relay_full.signal(ctx)
        return n_rounds

    def read_stage(ctx):
        for item, n_rounds in enumerate(rounds):
            yield from head_free.wait(ctx)
            ctx.write(head, item)
            ctx.write(head + 1, n_rounds)
            head_full.signal(ctx)
            yield from ctx.call(
                fetch_chunk, item, n_rounds, name=f"{name}_fetch"
            )
            yield

    def process_item(ctx, n_rounds):
        """Digest one item from the relay buffer, block by block."""
        digest = 0
        for _r in range(n_rounds):
            yield from relay_full.wait(ctx)
            for cell in range(block_size):
                digest = (digest * 33 + ctx.read(relay + cell)) % 8191
                ctx.compute(1)
            relay_free.signal(ctx)
        return digest

    def dedup_lookup(ctx, digest):
        yield from table_lock.acquire(ctx)
        slot = digest % dedup_slots
        seen = ctx.read(table + slot)
        if seen != digest:
            ctx.write(table + slot, digest)
        table_lock.release(ctx)
        return seen == digest

    def transform_stage(ctx):
        for _item in range(items):
            yield from head_full.wait(ctx)
            ctx.read(head)
            n_rounds = ctx.read(head + 1)
            head_free.signal(ctx)
            digest = yield from ctx.call(
                process_item, n_rounds, name=f"{name}_process"
            )
            duplicate = yield from ctx.call(
                dedup_lookup, digest, name=f"{name}_dedup"
            )
            if not duplicate:
                yield from write_free.wait(ctx)
                ctx.write(out_cell, digest)
                to_write.signal(ctx)
            yield

    def write_stage(ctx):
        written = 0
        while True:
            yield from to_write.wait(ctx)
            digest = ctx.read(out_cell)
            if digest < 0:
                break
            ctx.sys_write(out_fd, out_cell, 1)
            written += 1
            write_free.signal(ctx)
            yield
        return written

    def driver(ctx):
        reader = ctx.spawn(read_stage, name=f"{name}_reader")
        transform = ctx.spawn(transform_stage, name=f"{name}_transform")
        writer = ctx.spawn(write_stage, name=f"{name}_writer")
        yield from ctx.join(reader)
        yield from ctx.join(transform)
        # poison pill for the writer
        yield from write_free.wait(ctx)
        ctx.write(out_cell, -1)
        to_write.signal(ctx)
        yield from ctx.join(writer)

    machine.spawn(driver, name=f"{name}_driver")


def montecarlo_kernel(
    machine: Machine,
    name: str,
    workers: int = 4,
    trials: int = 16,
    params: int = 8,
    compute_blocks: int = 6,
    io_cells: int = 0,
) -> None:
    """Embarrassingly parallel simulation (swaptions / blackscholes).

    Workers read a small master-written parameter block once, then
    simulate privately; the only dynamic inputs are the parameter
    handoff and — with ``io_cells > 0`` — the options file the master
    loads at startup, so these benchmarks sit at the bottom of the
    thread-input charts.
    """
    param_block = machine.memory.alloc(params, f"{name}_params")
    results = machine.memory.alloc(workers, f"{name}_results")
    ready = Semaphore(0, f"{name}_ready")
    options_fd = None
    options_buf = None
    if io_cells > 0:
        options_fd = machine.kernel.open(FileDevice(list(range(50_000))))
        options_buf = machine.memory.alloc(io_cells, f"{name}_options")

    def simulate(ctx, wid, local_base):
        state = wid + 1
        for t in range(trials):
            state = (state * 1103515245 + 12345) % (2**31)
            ctx.write(local_base + t % 8, state % 1000)
            acc = ctx.read(local_base + t % 8)
            ctx.compute(compute_blocks)
        return state
        yield  # pragma: no cover

    def worker(ctx, wid):
        yield from ready.wait(ctx)
        ready.signal(ctx)  # broadcast
        total = 0
        for p in range(params):
            total += ctx.read(param_block + p)
        local_base = ctx.alloc(8, f"{name}_local{wid}")
        state = yield from ctx.call(simulate, wid, local_base, name=f"{name}_sim")
        ctx.write(results + wid, (total + state) % 100_000)

    def load_options(ctx):
        got = ctx.sys_read(options_fd, options_buf, io_cells)
        total = 0
        for i in range(got):
            total += ctx.read(options_buf + i)
        return total
        yield  # pragma: no cover

    def master(ctx):
        seedling = 0
        if io_cells > 0:
            seedling = yield from ctx.call(
                load_options, name=f"{name}_load_options"
            )
        for p in range(params):
            ctx.write(param_block + p, (p * 17 + seedling) % 101)
        ready.signal(ctx)
        yield

    machine.spawn(master, name=f"{name}_master")
    for wid in range(workers):
        machine.spawn(worker, wid, name=f"{name}_worker{wid}")


def stencil_kernel(
    machine: Machine,
    name: str,
    workers: int = 4,
    cells_per_worker: int = 20,
    iterations: int = 4,
    compute_blocks: int = 2,
) -> None:
    """1-D Jacobi-style relaxation with halo exchange (fluidanimate).

    The grid is split into contiguous partitions; every iteration each
    worker reads its partition plus one halo cell on each side — halo
    cells were written by the neighbouring worker, so each iteration
    contributes 2 thread-induced first-reads per worker, against
    ``cells_per_worker`` private re-reads.
    """
    n = workers * cells_per_worker
    grid = machine.memory.alloc(n + 2, f"{name}_grid")
    for i in range(n + 2):
        machine.memory.store(grid + i, i % 13)
    barrier = Barrier(workers, f"{name}_barrier")

    def relax_partition(ctx, lo, hi):
        updates = []
        for i in range(lo, hi):
            left = ctx.read(grid + i - 1)
            mid = ctx.read(grid + i)
            right = ctx.read(grid + i + 1)
            ctx.compute(compute_blocks)
            updates.append((i, (left + mid + right) // 3))
        for i, value in updates:
            ctx.write(grid + i, value)
        return None
        yield  # pragma: no cover

    def worker(ctx, wid):
        lo = 1 + wid * cells_per_worker
        hi = lo + cells_per_worker
        for _ in range(iterations):
            yield from ctx.call(relax_partition, lo, hi, name=f"{name}_relax")
            yield from barrier.wait(ctx)
            yield

    for wid in range(workers):
        machine.spawn(worker, wid, name=f"{name}_worker{wid}")

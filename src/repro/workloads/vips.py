"""Synthetic vips: the Figure 5 and Figure 6 case studies.

vips is a data-parallel image processing library; the PARSEC 2.1
benchmark runs its threaded pipeline on large images.  Two of its
routines star in the paper:

* ``im_generate`` (Figure 5) — the region evaluation driver.  Worker
  threads compute pixel tiles into a shared region buffer that the
  driver consumes tile after tile.  The buffer is reused, so the rms of
  an ``im_generate`` activation is capped near the buffer size; the drms
  counts every worker-produced pixel (thread input) and grows with the
  image.  As with MySQL, the rms cost plot fakes a superlinear trend.

* ``wbuffer_write_thread`` (Figure 6) — the background write-behind
  thread.  Each call drains an accumulation region filled by worker
  threads (thread input, different size every call), consults a journal
  refilled from disk (external input, sizes drawn from a small set), and
  writes the result out.  The paper observes 110 calls collapsing onto
  just 2 distinct rms values, while drms with external input only yields
  an intermediate number of points and full drms gives all 110 — the
  same 2 / intermediate / all-distinct structure these parameters
  reproduce at reduced scale.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.vm import FileDevice, Machine, Semaphore, SinkDevice

__all__ = ["im_generate_sweep", "wbuffer_workload", "vips_pipeline"]


def im_generate_sweep(
    tile_counts: Sequence[int] = (4, 8, 16, 32, 64),
    tile_size: int = 16,
    workers: int = 2,
    machine: Optional[Machine] = None,
) -> Machine:
    """Figure 5 experiment: ``im_generate`` on images of growing size.

    One image per entry of ``tile_counts``; each image is processed tile
    by tile by ``workers`` threads writing into a shared region buffer.
    """
    if workers < 1:
        raise ValueError("need at least one worker")
    if machine is None:
        machine = Machine()
    region = machine.memory.alloc(tile_size, "region_buffer")
    # image descriptors: a log-sized header chain read per image, the
    # slowly-growing rms component
    descriptors = machine.memory.alloc(64, "im_descriptors")
    for i in range(64):
        machine.memory.store(descriptors + i, i * 3)

    def tile_worker(ctx, tiles, lane, work_sem, done_sem):
        for t in range(tiles):
            yield from work_sem.wait(ctx)
            for i in range(lane, tile_size, workers):
                ctx.compute(3)  # evaluate the pixel
                ctx.write(region + i, (t * tile_size + i) % 251)
            done_sem.signal(ctx)
            yield

    def im_generate(ctx, tiles, work_sems, done_sems, out_base):
        depth = max(1, int(math.log2(tiles + 1)) * 2)
        for level in range(depth):
            ctx.read(descriptors + level)
            ctx.compute(1)
        for t in range(tiles):
            for sem in work_sems:
                sem.signal(ctx)
            for sem in done_sems:
                yield from sem.wait(ctx)
            acc = 0
            for i in range(tile_size):
                acc += ctx.read(region + i)
                ctx.compute(1)
            ctx.write(out_base + t, acc)
            yield
        return None

    def main(ctx):
        for image_index, tiles in enumerate(tile_counts):
            work_sems = [Semaphore(0, f"work{image_index}.{w}") for w in range(workers)]
            done_sems = [Semaphore(0, f"done{image_index}.{w}") for w in range(workers)]
            handles = [
                ctx.spawn(
                    tile_worker,
                    tiles,
                    lane,
                    work_sems[lane],
                    done_sems[lane],
                    name=f"tile_worker_{image_index}_{lane}",
                )
                for lane in range(workers)
            ]
            out_base = ctx.alloc(tiles, f"image{image_index}")
            yield from ctx.call(
                im_generate, tiles, work_sems, done_sems, out_base,
                name="im_generate",
            )
            for handle in handles:
                yield from ctx.join(handle)
            yield

    machine.spawn(main, name="vips_main")
    return machine


def wbuffer_workload(
    calls: int = 110,
    header_size: int = 65,
    journal_size: int = 2,
    journal_rounds_mod: int = 25,
    staging_size: int = 6,
    staging_rounds_base: int = 3,
    staging_rounds_step: int = 9,
    machine: Optional[Machine] = None,
) -> Machine:
    """Figure 6 experiment: the write-behind thread.

    Call ``i`` of ``wbuffer_write_thread`` works over *reused,
    fixed-size* buffers — so its rms is (almost) constant — but the
    buffers are *refilled* a call-dependent number of times:

    * it reads a fixed header: ``header_size`` cells, plus 2 more for a
      subset of calls — exactly **2 distinct rms classes**;
    * it processes ``1 + i % journal_rounds_mod`` rounds of a
      ``journal_size``-cell journal buffer, refilled from disk between
      rounds — **external input** with ``journal_rounds_mod`` distinct
      per-call volumes;
    * it drains ``staging_rounds_base + i * staging_rounds_step``
      rounds of a ``staging_size``-cell staging buffer refilled by the
      producer thread between rounds — **thread input**, strictly
      increasing with ``i`` in steps that exceed the header + journal
      spread, so the full drms of every call is distinct;
    * it pushes each drained staging round back out through ``write(2)``.

    The resulting profile reproduces Figure 6's structure: the rms
    collapses all calls onto 2 points, drms with external input only
    yields an intermediate number of points (up to
    ``2 * journal_rounds_mod``), and the full drms yields one point per
    call.
    """
    if calls < 1:
        raise ValueError("need at least one call")
    journal_spread = journal_size * (journal_rounds_mod - 1)
    if staging_size * staging_rounds_step <= journal_spread + 3:
        raise ValueError(
            "staging step must exceed the journal+header spread to keep "
            "all full-drms values distinct"
        )
    if machine is None:
        machine = Machine()

    header = machine.memory.alloc(header_size + 3, "wbuffer_header")
    for i in range(header_size + 3):
        machine.memory.store(header + i, i)
    staging = machine.memory.alloc(staging_size, "staging_buffer")
    journal_buf = machine.memory.alloc(journal_size, "journal")
    journal_fd = machine.kernel.open(FileDevice(list(range(100_000))))
    disk_out = SinkDevice()
    out_fd = machine.kernel.open(disk_out)

    need_data = Semaphore(0, "staging_need")
    have_data = Semaphore(0, "staging_have")
    total_rounds = sum(
        staging_rounds_base + i * staging_rounds_step for i in range(calls)
    )

    def staging_producer(ctx):
        for round_index in range(total_rounds):
            yield from need_data.wait(ctx)
            for cell in range(staging_size):
                ctx.write(staging + cell, (round_index * 31 + cell) % 199)
            have_data.signal(ctx)
            yield

    def wbuffer_write_thread(ctx, i):
        # header scan: 2 distinct rms classes over all calls (the extra
        # is odd so header classes never alias under even-sized journal
        # volumes)
        extra = 3 if (i * 7) % calls < int(calls * 0.41) else 0
        for cell in range(header_size + extra):
            ctx.read(header + cell)
        # journal rounds: external input, few distinct per-call volumes
        journal_rounds = 1 + i % journal_rounds_mod
        for r in range(journal_rounds):
            got = ctx.sys_pread64(
                journal_fd,
                journal_buf,
                journal_size,
                offset=(i * journal_rounds_mod + r) * journal_size,
            )
            for cell in range(got):
                ctx.read(journal_buf + cell)
                ctx.compute(1)
        # staging rounds: thread input, strictly increasing with i
        staging_rounds = staging_rounds_base + i * staging_rounds_step
        checksum = 0
        for _ in range(staging_rounds):
            need_data.signal(ctx)
            yield from have_data.wait(ctx)
            for cell in range(staging_size):
                checksum += ctx.read(staging + cell)
        # write behind: one flush per call
        ctx.sys_write(out_fd, staging, staging_size)
        return checksum

    def write_loop(ctx):
        for i in range(calls):
            yield from ctx.call(
                wbuffer_write_thread, i, name="wbuffer_write_thread"
            )
            yield

    machine.spawn(staging_producer)
    machine.spawn(write_loop)
    return machine


def vips_pipeline(
    tile_counts: Sequence[int] = (4, 8, 16),
    wbuffer_calls: int = 20,
    machine: Optional[Machine] = None,
) -> Machine:
    """The combined vips benchmark used by the suite-level experiments
    (Figures 11-15): region evaluation plus the write-behind thread.
    Thread input dominates, as in the paper's Figure 13(b)."""
    if machine is None:
        machine = Machine()
    im_generate_sweep(tile_counts=tile_counts, machine=machine)
    wbuffer_workload(calls=wbuffer_calls, machine=machine)
    return machine

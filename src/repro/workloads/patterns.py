"""The paper's two dynamic-workload software patterns (Section 2).

**Pattern 1 — producer-consumer** (Figure 2): the classical
semaphore-based implementation.  ``produceData`` writes to a single
shared location ``x`` and ``consumeData`` reads it back; semaphores
guarantee strict alternation.  After n items,
``rms(consumer) = 1`` while ``drms(consumer) = n``.

**Pattern 2 — data streaming** (Figure 3): ``streamReader`` owns a
2-cell buffer refilled by the kernel each iteration, of which only
``b[0]`` is consumed.  After n iterations ``rms(streamReader) = 1``
while ``drms(streamReader) = n``.

Both functions build a ready-to-run :class:`~repro.vm.machine.Machine`.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.vm import Machine, Mutex, Semaphore, StreamDevice

__all__ = ["producer_consumer", "stream_reader", "pipeline_chain"]


def producer_consumer(
    n: int, machine: Optional[Machine] = None, process_blocks: int = 3
) -> Machine:
    """Build the Figure 2 producer-consumer workload exchanging ``n`` items."""
    if n < 0:
        raise ValueError("item count must be >= 0")
    if machine is None:
        machine = Machine()
    x = machine.memory.alloc(1, "x")
    empty = Semaphore(1, "empty")
    full = Semaphore(0, "full")
    mutex = Mutex("mutex")

    def produce_data(ctx, i):
        ctx.compute(1)
        ctx.write(x, i * i)  # "produce" a value
        return i * i
        yield  # pragma: no cover - marks this function as a generator

    def consume_data(ctx):
        value = ctx.read(x)
        ctx.compute(process_blocks)
        return value
        yield  # pragma: no cover

    def producer(ctx):
        for i in range(n):
            yield from empty.wait(ctx)
            yield from mutex.acquire(ctx)
            yield from ctx.call(produce_data, i, name="produceData")
            mutex.release(ctx)
            full.signal(ctx)
            yield

    def consumer(ctx):
        total = 0
        for _ in range(n):
            yield from full.wait(ctx)
            yield from mutex.acquire(ctx)
            total += yield from ctx.call(consume_data, name="consumeData")
            mutex.release(ctx)
            empty.signal(ctx)
            yield
        return total

    machine.spawn(producer)
    machine.spawn(consumer)
    return machine


def stream_reader(
    n: int,
    machine: Optional[Machine] = None,
    data: Optional[Iterator[int]] = None,
    buffer_size: int = 2,
) -> Machine:
    """Build the Figure 3 buffered stream reader performing ``n`` iterations.

    Each iteration fills a ``buffer_size``-cell buffer via the ``read``
    system call and consumes only ``b[0]``.
    """
    if n < 0:
        raise ValueError("iteration count must be >= 0")
    if machine is None:
        machine = Machine()
    device = StreamDevice(data=data, seed=7)
    fd = machine.kernel.open(device)
    buf = machine.memory.alloc(buffer_size, "b")

    def consume_data(ctx, value):
        ctx.compute(2)
        return value
        yield  # pragma: no cover

    def stream_reader_main(ctx):
        checksum = 0
        for _ in range(n):
            filled = ctx.sys_read(fd, buf, buffer_size)
            if filled == 0:
                break
            value = ctx.read(buf)  # read and process b[0] only
            checksum += yield from ctx.call(
                consume_data, value, name="consumeData"
            )
            yield
        return checksum

    machine.spawn(stream_reader_main, name="streamReader")
    return machine


def pipeline_chain(
    n_items: int, stages: int = 3, machine: Optional[Machine] = None
) -> Machine:
    """A generalisation of the producer-consumer pattern: ``stages``
    threads connected by single-slot mailboxes, each stage transforming
    every item before passing it on.  Every inter-stage hop is thread
    input, so drms grows with ``n_items`` at every stage — a stress
    workload for the thread-input metrics and the helgrind tool.
    """
    if stages < 2:
        raise ValueError("a pipeline needs at least 2 stages")
    if machine is None:
        machine = Machine()
    slots = [machine.memory.alloc(1, f"slot{i}") for i in range(stages - 1)]
    empties = [Semaphore(1, f"empty{i}") for i in range(stages - 1)]
    fulls = [Semaphore(0, f"full{i}") for i in range(stages - 1)]

    def source(ctx):
        for i in range(n_items):
            yield from empties[0].wait(ctx)
            ctx.write(slots[0], i)
            fulls[0].signal(ctx)
            yield

    def transform(ctx, stage):
        for _ in range(n_items):
            yield from fulls[stage - 1].wait(ctx)
            value = ctx.read(slots[stage - 1])
            empties[stage - 1].signal(ctx)
            ctx.compute(2)
            yield from empties[stage].wait(ctx)
            ctx.write(slots[stage], value + 1)
            fulls[stage].signal(ctx)
            yield

    def sink(ctx):
        total = 0
        for _ in range(n_items):
            yield from fulls[-1].wait(ctx)
            total += ctx.read(slots[-1])
            empties[-1].signal(ctx)
            ctx.compute(1)
            yield
        return total

    machine.spawn(source, name="stage0_source")
    for stage in range(1, stages - 1):
        machine.spawn(transform, stage, name=f"stage{stage}_transform")
    machine.spawn(sink, name=f"stage{stages - 1}_sink")
    return machine

"""Algorithmic workloads: sorting and searching routines.

Figure 10 of the paper profiles ``selection_sort`` to argue that counting
executed basic blocks yields the same trend as wall-clock time with far
less variance.  These workloads also exercise the classic
input-sensitive-profiling case (static workloads, rms == drms) and feed
the cost-function fitting tests: selection sort must classify as
O(n^2), merge sort as O(n log n), binary search as O(log n), and so on.

Every driver runs a *sweep*: one VM program that calls the routine on
arrays of several sizes, so a single profile contains one performance
point per size.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.vm import Machine

__all__ = [
    "selection_sort_sweep",
    "insertion_sort_sweep",
    "merge_sort_sweep",
    "binary_search_sweep",
    "DEFAULT_SIZES",
]

DEFAULT_SIZES = (4, 8, 12, 16, 24, 32, 48, 64)


def _fill_random(ctx, base, n, seed):
    """Write n pseudo-random values; the *caller* initialises the array so
    the sort's first access to every cell is a read (input, not output)."""
    rng = random.Random(seed)
    for i in range(n):
        ctx.write(base + i, rng.randint(0, 10 * n + 1))
    return None
    yield  # pragma: no cover


def selection_sort(ctx, base, n):
    """Textbook selection sort over ``memory[base .. base+n)``."""
    for i in range(n - 1):
        min_index = i
        min_value = ctx.read(base + i)
        for j in range(i + 1, n):
            candidate = ctx.read(base + j)
            ctx.compute(1)  # the comparison
            if candidate < min_value:
                min_index = j
                min_value = candidate
        if min_index != i:
            tmp = ctx.read(base + i)
            ctx.write(base + i, min_value)
            ctx.write(base + min_index, tmp)
    return None
    yield  # pragma: no cover


def insertion_sort(ctx, base, n):
    for i in range(1, n):
        key = ctx.read(base + i)
        j = i - 1
        while j >= 0:
            current = ctx.read(base + j)
            ctx.compute(1)
            if current <= key:
                break
            ctx.write(base + j + 1, current)
            j -= 1
        ctx.write(base + j + 1, key)
    return None
    yield  # pragma: no cover


def merge_sort(ctx, base, n, scratch):
    """Bottom-up merge sort using a scratch region of the same size."""
    width = 1
    src, dst = base, scratch
    while width < n:
        for lo in range(0, n, 2 * width):
            mid = min(lo + width, n)
            hi = min(lo + 2 * width, n)
            i, j, k = lo, mid, lo
            while i < mid and j < hi:
                left = ctx.read(src + i)
                right = ctx.read(src + j)
                ctx.compute(1)
                if left <= right:
                    ctx.write(dst + k, left)
                    i += 1
                else:
                    ctx.write(dst + k, right)
                    j += 1
                k += 1
            while i < mid:
                ctx.write(dst + k, ctx.read(src + i))
                i += 1
                k += 1
            while j < hi:
                ctx.write(dst + k, ctx.read(src + j))
                j += 1
                k += 1
        src, dst = dst, src
        width *= 2
    if src != base:
        for i in range(n):
            ctx.write(base + i, ctx.read(src + i))
    return None
    yield  # pragma: no cover


def binary_search(ctx, base, n, needle):
    lo, hi = 0, n - 1
    while lo <= hi:
        mid = (lo + hi) // 2
        value = ctx.read(base + mid)
        ctx.compute(1)
        if value == needle:
            return mid
        if value < needle:
            lo = mid + 1
        else:
            hi = mid - 1
    return -1
    yield  # pragma: no cover


def _sweep_machine(routine, sizes, name, needs_scratch=False, sorted_input=False):
    machine = Machine()
    sizes = tuple(sizes)

    def main(ctx):
        for index, n in enumerate(sizes):
            base = ctx.alloc(n, f"arr{n}")
            if sorted_input:
                for i in range(n):
                    ctx.write(base + i, 2 * i)
            else:
                yield from ctx.call(_fill_random, base, n, index, name="fill")
            if needs_scratch:
                scratch = ctx.alloc(n, f"scratch{n}")
                yield from ctx.call(routine, base, n, scratch, name=name)
            else:
                yield from ctx.call(routine, base, n, name=name)
            yield

    machine.spawn(main)
    return machine


def selection_sort_sweep(sizes: Sequence[int] = DEFAULT_SIZES) -> Machine:
    """The Figure 10 workload: selection sort on increasing array sizes."""
    return _sweep_machine(selection_sort, sizes, "selection_sort")


def insertion_sort_sweep(sizes: Sequence[int] = DEFAULT_SIZES) -> Machine:
    return _sweep_machine(insertion_sort, sizes, "insertion_sort")


def merge_sort_sweep(sizes: Sequence[int] = DEFAULT_SIZES) -> Machine:
    return _sweep_machine(merge_sort, sizes, "merge_sort", needs_scratch=True)


def binary_search_sweep(
    sizes: Sequence[int] = (16, 64, 256, 1024, 4096),
    needle: Optional[int] = None,
) -> Machine:
    """Binary search over pre-sorted arrays (expected O(log n) profile).

    The search misses by default (needle absent), forcing a full
    log-depth probe sequence at every size.
    """
    machine = Machine()
    sizes = tuple(sizes)

    def main(ctx):
        for n in sizes:
            base = ctx.alloc(n, f"arr{n}")
            for i in range(n):
                ctx.write(base + i, 2 * i)
            target = needle if needle is not None else 2 * n + 1
            yield from ctx.call(
                binary_search, base, n, target, name="binary_search"
            )
            yield

    machine.spawn(main)
    return machine

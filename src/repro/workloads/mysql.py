"""Synthetic MySQL: the Figure 4 case study and the mysqlslap emulation.

The paper's first case study queries MySQL tables of increasing sizes
with ``SELECT *``.  Inside ``mysql_select``, tuples are partitioned into
groups; each group is loaded into a reused buffer through a kernel system
call and then scanned.  Because the buffer is reused, the rms of a query
roughly coincides with the buffer size regardless of the table size —
while the cost keeps growing with the number of buffer loads.  The drms
counts every kernel refill, tracking the true input size.

Structure of the model:

* :class:`MysqlServer` owns a "disk" (one :class:`FileDevice` per table),
  a group buffer, and a small B-tree-ish catalog whose lookup depth grows
  logarithmically with the table size — this adds the slowly-growing
  component that makes the paper's rms plot *superlinear*: cost grows
  linearly with tuples while rms grows only with ``log(tuples)``.
* ``mysql_select`` scans a table group by group via ``pread64``.
* :func:`select_sweep` builds the Figure 4 experiment (one query per
  table size).
* :func:`mysqlslap` emulates the load client: ``clients`` threads submit
  ``queries_per_client`` auto-generated queries against shared tables,
  with a mutex-guarded query cache (thread input) and result sets pushed
  to per-client sockets (external output).
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence

from repro.vm import FileDevice, Machine, Mutex, SinkDevice

__all__ = ["MysqlServer", "select_sweep", "mysqlslap"]

#: tuples fetched per kernel read, the group/buffer size of the model
GROUP_SIZE = 32


class MysqlServer:
    """Storage engine state shared by all connections of one machine."""

    def __init__(self, machine: Machine, buffer_size: int = GROUP_SIZE) -> None:
        self.machine = machine
        self.buffer_size = buffer_size
        #: table name -> (fd, row count)
        self.tables: Dict[str, tuple] = {}
        #: per-connection group buffers, reused by every query of that
        #: connection (the rms cap); real MySQL likewise keeps read
        #: buffers per session, so concurrent scans do not race
        self._group_buffers: Dict[int, int] = {}
        #: catalog: index pages for the largest possible lookup chain
        self.catalog = machine.memory.alloc(64, "catalog")
        for i in range(64):
            machine.memory.store(self.catalog + i, i)
        #: mutex-guarded query cache (maps query id -> cached cost)
        self.cache_lock = Mutex("query_cache")
        self.query_cache = machine.memory.alloc(256, "query_cache")
        for i in range(256):
            machine.memory.store(self.query_cache + i, 0)

    def create_table(self, name: str, rows: int, seed: int = 0) -> None:
        """Materialise a table of ``rows`` tuples on the simulated disk."""
        rng = random.Random(seed)
        contents = [rng.randint(0, 1_000_000) for _ in range(rows)]
        fd = self.machine.kernel.open(FileDevice(contents))
        self.tables[name] = (fd, rows)

    def group_buffer_for(self, ctx) -> int:
        buffer = self._group_buffers.get(ctx.tid)
        if buffer is None:
            buffer = self.machine.memory.alloc(
                self.buffer_size, f"group_buffer_t{ctx.tid}"
            )
            self._group_buffers[ctx.tid] = buffer
        return buffer

    # -- the profiled server routine ------------------------------------------

    def mysql_select(self, ctx, table: str):
        """Scan all tuples of ``table``; returns (rows, checksum).

        The routine the paper profiles: group-at-a-time buffered scan.
        Reads per activation touch the (reused) group buffer plus a
        log-depth chain of catalog pages, so rms ~= buffer + O(log rows)
        while drms ~= rows.
        """
        fd, rows = self.tables[table]
        group_buffer = self.group_buffer_for(ctx)
        # catalog walk: B-tree descent; depth grows with log(rows) but
        # coarsely (high-fanout pages), so many table sizes share one
        # depth — the rms collapses them while the drms stays distinct
        depth = max(1, int(math.log2(rows + 1)) // 2)
        for level in range(depth):
            ctx.read(self.catalog + level)
            ctx.compute(2)
        checksum = 0
        scanned = 0
        position = 0
        while scanned < rows:
            filled = ctx.sys_pread64(
                fd, group_buffer, self.buffer_size, offset=position
            )
            if filled == 0:
                break
            position += filled
            for i in range(filled):
                value = ctx.read(group_buffer + i)
                ctx.compute(1)  # predicate evaluation
                checksum += value
            scanned += filled
            yield  # group boundary: a natural preemption point
        return scanned, checksum


def select_sweep(
    table_rows: Sequence[int] = (64, 128, 256, 512, 1024, 2048),
    machine: Optional[Machine] = None,
) -> Machine:
    """Figure 4 experiment: one ``SELECT *`` per table size."""
    if machine is None:
        machine = Machine()
    server = MysqlServer(machine)
    for index, rows in enumerate(table_rows):
        server.create_table(f"t{rows}", rows, seed=index)

    def client(ctx):
        for rows in table_rows:
            yield from ctx.call(
                server.mysql_select, f"t{rows}", name="mysql_select"
            )
            yield

    machine.spawn(client, name="mysql_client")
    return machine


def mysqlslap(
    clients: int = 8,
    queries_per_client: int = 12,
    table_rows: Sequence[int] = (64, 96, 128, 192, 256, 384, 512, 768),
    machine: Optional[Machine] = None,
    seed: int = 0,
) -> Machine:
    """The load-emulation client of Section 4.1 (scaled down).

    The paper runs 50 concurrent clients submitting ~1000 auto-generated
    queries; the defaults here keep test runtimes sane while preserving
    the workload's nature — external input dominates (disk reads and
    socket writes), with some thread input through the shared,
    mutex-guarded query cache.
    """
    if clients < 1:
        raise ValueError("need at least one client")
    if machine is None:
        machine = Machine()
    server = MysqlServer(machine)
    for index, rows in enumerate(table_rows):
        server.create_table(f"t{rows}", rows, seed=index)
    table_names = [f"t{rows}" for rows in table_rows]

    def cache_lookup(ctx, slot):
        """Mutex-guarded read of a cache slot another client may have
        written — the thread-input component of the workload."""
        yield from server.cache_lock.acquire(ctx)
        value = ctx.read(server.query_cache + slot)
        server.cache_lock.release(ctx)
        return value

    def cache_store(ctx, slot, value):
        yield from server.cache_lock.acquire(ctx)
        ctx.write(server.query_cache + slot, value)
        server.cache_lock.release(ctx)
        return None

    def slap_client(ctx, client_id):
        rng = random.Random(seed * 1000 + client_id)
        socket = SinkDevice()
        sock_fd = machine.kernel.open(socket)
        result_buf = ctx.alloc(4, f"result{client_id}")
        for q in range(queries_per_client):
            table = table_names[rng.randrange(len(table_names))]
            slot = (hash(table) + q) % 256
            cached = yield from ctx.call(cache_lookup, slot, name="cache_lookup")
            if cached and rng.random() < 0.3:
                ctx.compute(2)  # cache hit: cheap
            else:
                rows, checksum = yield from ctx.call(
                    server.mysql_select, table, name="mysql_select"
                )
                yield from ctx.call(
                    cache_store, slot, checksum % 1_000_000 + 1, name="cache_store"
                )
                # serialise the result set to the client socket
                ctx.write(result_buf, rows)
                ctx.write(result_buf + 1, checksum % 97)
                ctx.sys_sendto(sock_fd, result_buf, 2)
            yield

    for client_id in range(clients):
        machine.spawn(slap_client, client_id, name=f"client{client_id}")
    return machine

"""Workload registry: name → factory, with suite tags.

The experiment harness iterates benchmarks by suite exactly as the
paper's evaluation does: ``parsec`` (PARSEC 2.1 on simlarge-like
inputs), ``specomp`` (SPEC OMP2012 on train-like inputs), plus the
standalone ``mysqlslap`` application and the case-study/micro workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.vm import Machine
from repro.workloads.mysql import mysqlslap, select_sweep
from repro.workloads.parsec import PARSEC_BENCHMARKS
from repro.workloads.patterns import producer_consumer, stream_reader
from repro.workloads.sorting import selection_sort_sweep
from repro.workloads.specomp import SPECOMP_BENCHMARKS
from repro.workloads.vips import im_generate_sweep, wbuffer_workload

__all__ = ["Workload", "REGISTRY", "get_workload", "suite", "SUITES"]


@dataclass(frozen=True)
class Workload:
    """A named, suite-tagged benchmark factory.

    ``build(threads, scale)`` returns a ready-to-run
    :class:`~repro.vm.machine.Machine`; not every workload is
    thread-count-parametric (the case studies fix their own threading),
    in which case ``threads`` is ignored.
    """

    name: str
    suite: str
    build: Callable[..., Machine]
    threads_parametric: bool = True


def _fixed(build: Callable[[], Machine]) -> Callable[..., Machine]:
    def wrapper(threads: int = 4, scale: int = 1) -> Machine:
        return build()

    return wrapper


REGISTRY: Dict[str, Workload] = {}


def _register(workload: Workload) -> None:
    if workload.name in REGISTRY:
        raise ValueError(f"duplicate workload {workload.name!r}")
    REGISTRY[workload.name] = workload


for _name, _build in PARSEC_BENCHMARKS.items():
    _register(Workload(_name, "parsec", _build))

for _name, _build in SPECOMP_BENCHMARKS.items():
    # smithwa exists only in SPEC OMP; no name clashes with PARSEC
    _register(Workload(_name, "specomp", _build))

_register(
    Workload(
        "mysqlslap",
        "apps",
        lambda threads=4, scale=1: mysqlslap(
            clients=max(2, threads), queries_per_client=6 * scale
        ),
    )
)
_register(
    Workload("mysql_select", "case-studies", _fixed(select_sweep), False)
)
_register(
    Workload("vips_im_generate", "case-studies", _fixed(im_generate_sweep), False)
)
_register(
    Workload(
        "vips_wbuffer",
        "case-studies",
        lambda threads=4, scale=1: wbuffer_workload(calls=28 * scale),
        False,
    )
)
_register(
    Workload(
        "producer_consumer",
        "micro",
        lambda threads=4, scale=1: producer_consumer(20 * scale),
        False,
    )
)
_register(
    Workload(
        "stream_reader",
        "micro",
        lambda threads=4, scale=1: stream_reader(20 * scale),
        False,
    )
)
_register(
    Workload(
        "selection_sort", "micro", _fixed(selection_sort_sweep), False
    )
)

SUITES = ("parsec", "specomp", "apps", "case-studies", "micro")


def get_workload(name: str) -> Workload:
    if name not in REGISTRY:
        raise KeyError(
            f"unknown workload {name!r}; known: {sorted(REGISTRY)}"
        )
    return REGISTRY[name]


def suite(tag: str) -> List[Workload]:
    """All workloads of one suite, name-ordered."""
    if tag not in SUITES:
        raise KeyError(f"unknown suite {tag!r}; known: {SUITES}")
    return sorted(
        (w for w in REGISTRY.values() if w.suite == tag),
        key=lambda w: w.name,
    )

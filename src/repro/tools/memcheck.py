"""mini-memcheck: addressability/validity shadow-bit checking.

Memcheck [17] shadows every memory cell with validity state and reports
reads of undefined values.  The model here keeps one shadow cell per
address (``UNDEFINED``/``DEFINED``), marks cells defined on writes and
kernel fills, and flags reads of never-defined cells.  Like the real
tool it does **not** trace function calls and returns (the paper notes
memcheck is ~1.5x faster than aprof-drms partly for this reason), and
it is independent of the number of threads: one global shadow state,
no per-thread structures.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.core.events import (
    Event,
    KernelToUser,
    Read,
    UserToKernel,
    Write,
)
from repro.core.shadow import ShadowMemory
from repro.tools.base import AnalysisTool

__all__ = ["Memcheck"]

UNDEFINED = 0
DEFINED = 1


class Memcheck(AnalysisTool):
    name = "memcheck"

    def __init__(self, max_reports: int = 100) -> None:
        self.vbits = ShadowMemory(default=UNDEFINED)
        self.undefined_reads: List[Tuple[int, int]] = []
        self.max_reports = max_reports
        self.reads = 0
        self.writes = 0

    def consume(self, event: Event) -> None:
        if isinstance(event, Read):
            self.reads += 1
            if self.vbits[event.addr] == UNDEFINED:
                if len(self.undefined_reads) < self.max_reports:
                    self.undefined_reads.append((event.thread, event.addr))
        elif isinstance(event, Write):
            self.writes += 1
            self.vbits[event.addr] = DEFINED
        elif isinstance(event, KernelToUser):
            self.vbits[event.addr] = DEFINED
        elif isinstance(event, UserToKernel):
            # passing undefined data to a syscall is memcheck's classic
            # "syscall param points to uninitialised byte(s)"
            if self.vbits[event.addr] == UNDEFINED:
                if len(self.undefined_reads) < self.max_reports:
                    self.undefined_reads.append((event.thread, event.addr))

    def finish(self) -> Dict[str, Any]:
        return {
            "reads": self.reads,
            "writes": self.writes,
            "undefined_reads": list(self.undefined_reads),
        }

    def space_cells(self) -> int:
        return self.vbits.space_cells()

"""mini-memcheck: addressability/validity shadow-bit checking.

Memcheck [17] shadows every memory cell with validity state and reports
reads of undefined values.  The model here keeps one shadow cell per
address (``UNDEFINED``/``DEFINED``), marks cells defined on writes and
kernel fills, and flags reads of never-defined cells.  Like the real
tool it does **not** trace function calls and returns (the paper notes
memcheck is ~1.5x faster than aprof-drms partly for this reason), and
it is independent of the number of threads: one global shadow state,
no per-thread structures.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.core.events import (
    OP_KERNEL_TO_USER,
    OP_READ,
    OP_USER_TO_KERNEL,
    OP_WRITE,
    Event,
    EventBatch,
    KernelToUser,
    Read,
    UserToKernel,
    Write,
)
from repro.core.shadow import ShadowMemory
from repro.tools.base import AnalysisTool

__all__ = ["Memcheck"]

UNDEFINED = 0
DEFINED = 1


class Memcheck(AnalysisTool):
    name = "memcheck"

    def __init__(self, max_reports: int = 100) -> None:
        self.vbits = ShadowMemory(default=UNDEFINED)
        self.undefined_reads: List[Tuple[int, int]] = []
        self.max_reports = max_reports
        self.reads = 0
        self.writes = 0

    def consume(self, event: Event) -> None:
        if isinstance(event, Read):
            self.reads += 1
            if self.vbits[event.addr] == UNDEFINED:
                if len(self.undefined_reads) < self.max_reports:
                    self.undefined_reads.append((event.thread, event.addr))
        elif isinstance(event, Write):
            self.writes += 1
            self.vbits[event.addr] = DEFINED
        elif isinstance(event, KernelToUser):
            self.vbits[event.addr] = DEFINED
        elif isinstance(event, UserToKernel):
            # passing undefined data to a syscall is memcheck's classic
            # "syscall param points to uninitialised byte(s)"
            if self.vbits[event.addr] == UNDEFINED:
                if len(self.undefined_reads) < self.max_reports:
                    self.undefined_reads.append((event.thread, event.addr))

    def consume_batch(self, batch: EventBatch) -> None:
        """Opcode-dispatched fast path (state-equivalent to scalar
        :meth:`consume`): the validity shadow is walked through a cached
        ``(tag, chunk)`` leaf pair, and read-side checks use the
        non-allocating :meth:`ShadowMemory.leaf_peek` so the shadowed
        footprint matches the scalar path cell for cell."""
        ops = batch.ops
        n = len(ops)
        if not n:
            return
        threads_a = batch.threads
        args_a = batch.args
        vbits = self.vbits
        leaf_bits = vbits.leaf_bits
        leaf_mask = vbits.leaf_mask
        reports = self.undefined_reads
        max_reports = self.max_reports
        reads = self.reads
        writes = self.writes
        tag = -1
        chunk = None  # cached leaf; None may mean "leaf not allocated"

        i = 0
        while i < n:
            op = ops[i]
            if op == OP_READ or op == OP_USER_TO_KERNEL:
                if op == OP_READ:
                    reads += 1
                addr = args_a[i]
                t = addr >> leaf_bits
                if t != tag:
                    chunk = vbits.leaf_peek(addr)
                    tag = t
                undefined = (
                    chunk is None or chunk[addr & leaf_mask] == UNDEFINED
                )
                if undefined and len(reports) < max_reports:
                    reports.append((threads_a[i], addr))
            elif op == OP_WRITE or op == OP_KERNEL_TO_USER:
                if op == OP_WRITE:
                    writes += 1
                addr = args_a[i]
                t = addr >> leaf_bits
                if t != tag or chunk is None:
                    chunk = vbits.leaf_create(addr)
                    tag = t
                chunk[addr & leaf_mask] = DEFINED
            i += 1
        self.reads = reads
        self.writes = writes

    def finish(self) -> Dict[str, Any]:
        return {
            "reads": self.reads,
            "writes": self.writes,
            "undefined_reads": list(self.undefined_reads),
        }

    def space_cells(self) -> int:
        return self.vbits.space_cells()

"""mini-helgrind: happens-before data-race detection.

Helgrind [15] detects data races in lock-based programs.  This model
implements the vector-clock happens-before discipline with FastTrack-
style per-location metadata:

* each thread carries a vector clock, incremented at release points;
* each lock carries a vector clock; ``release`` joins the thread's clock
  into it, ``acquire`` joins it back into the acquiring thread —
  establishing happens-before edges through the lock;
* each location stores full vector clocks of its reads and writes
  (the DJIT+ discipline); a write racing a previous read/write, or a
  read racing a previous write, is reported when the stored clock does
  not happen-before the current access;
* like the real tool, a lockset (Eraser) component runs alongside:
  every location keeps a candidate lockset intersected with the
  accessing thread's held locks on each access, feeding the
  "possible data race" second opinion.

Kernel fills are treated as synchronised (the syscall orders them), as
are thread start events (parent's clock is inherited).  Per memory
event the tool performs full vector-clock comparisons and keeps two
vector clocks per shadowed location — the most per-event work and the
largest shadow state of all the tools, which is why helgrind is both
the slowest and the most memory-hungry column of Table 1.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.events import (
    OP_KERNEL_TO_USER,
    OP_LOCK_ACQUIRE,
    OP_LOCK_RELEASE,
    OP_READ,
    OP_THREAD_START,
    OP_USER_TO_KERNEL,
    OP_WRITE,
    Event,
    EventBatch,
    KernelToUser,
    LockAcquire,
    LockRelease,
    Read,
    ThreadStart,
    UserToKernel,
    Write,
)
from repro.core.shadow import ShadowMemory
from repro.tools.base import AnalysisTool

__all__ = ["Helgrind", "VectorClock"]


class VectorClock:
    """A sparse vector clock over thread ids."""

    __slots__ = ("clocks",)

    def __init__(self, clocks: Optional[Dict[int, int]] = None) -> None:
        self.clocks: Dict[int, int] = dict(clocks) if clocks else {}

    def get(self, tid: int) -> int:
        return self.clocks.get(tid, 0)

    def tick(self, tid: int) -> None:
        self.clocks[tid] = self.clocks.get(tid, 0) + 1

    def join(self, other: "VectorClock") -> None:
        for tid, clock in other.clocks.items():
            if clock > self.clocks.get(tid, 0):
                self.clocks[tid] = clock

    def copy(self) -> "VectorClock":
        return VectorClock(self.clocks)

    def dominates_epoch(self, tid: int, clock: int) -> bool:
        """True iff the epoch ``clock@tid`` happens-before this clock."""
        return clock <= self.clocks.get(tid, 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"T{t}:{c}" for t, c in sorted(self.clocks.items()))
        return f"VC({inner})"


class Helgrind(AnalysisTool):
    name = "helgrind"

    def __init__(self, max_reports: int = 1000) -> None:
        self._threads: Dict[int, VectorClock] = {}
        self._locks: Dict[str, VectorClock] = {}
        # Per-location metadata lives behind a three-level shadow table
        # (as in the real tool, which shadows guest memory with VTS
        # indices): _meta[addr] holds 1 + an index into _records, each
        # record being [write_vec, read_vec, lockset].
        self._meta = ShadowMemory(default=0)
        self._records: List[list] = []
        #: width of the dense per-location vectors (threads seen so far)
        self._width = 0
        #: tid -> set of currently held lock names (Eraser component)
        self._held: Dict[int, set] = {}
        #: addr -> candidate lockset
        self._locksets: Dict[int, set] = {}
        #: locations whose candidate lockset drained to empty while
        #: touched by more than one thread
        self.lockset_suspects: set = set()
        self._location_threads: Dict[int, int] = {}
        self.races: List[Tuple[int, str, int, int]] = []
        self.max_reports = max_reports

    # -- clock plumbing ---------------------------------------------------

    def _clock(self, tid: int) -> VectorClock:
        vc = self._threads.get(tid)
        if vc is None:
            vc = VectorClock({tid: 1})
            self._threads[tid] = vc
            self._width = max(self._width, tid)
        return vc

    def _record(self, addr: int) -> list:
        index = self._meta[addr]
        if index == 0:
            record = [[0] * self._width, [0] * self._width, None]
            self._records.append(record)
            self._meta[addr] = len(self._records)
            return record
        record = self._records[index - 1]
        for vec in (record[0], record[1]):
            if len(vec) < self._width:
                vec.extend([0] * (self._width - len(vec)))
        return record

    def _report(self, addr: int, kind: str, first: int, second: int) -> None:
        if len(self.races) < self.max_reports:
            self.races.append((addr, kind, first, second))

    # -- event handlers -------------------------------------------------------

    def consume(self, event: Event) -> None:
        if isinstance(event, Read):
            self._on_read(event.thread, event.addr)
        elif isinstance(event, Write):
            self._on_write(event.thread, event.addr)
        elif isinstance(event, LockAcquire):
            lock_vc = self._locks.get(event.lock)
            if lock_vc is not None:
                self._clock(event.thread).join(lock_vc)
            self._held.setdefault(event.thread, set()).add(event.lock)
        elif isinstance(event, LockRelease):
            vc = self._clock(event.thread)
            lock_vc = self._locks.setdefault(event.lock, VectorClock())
            lock_vc.join(vc)
            vc.tick(event.thread)
            self._held.setdefault(event.thread, set()).discard(event.lock)
        elif isinstance(event, ThreadStart):
            if event.parent:
                self._clock(event.thread).join(self._clock(event.parent))
        elif isinstance(event, KernelToUser):
            # a kernel fill is ordered by the syscall: treat as a
            # synchronised write by the issuing thread
            self._on_write(event.thread, event.addr)
        elif isinstance(event, UserToKernel):
            self._on_read(event.thread, event.addr)

    def consume_batch(self, batch: EventBatch) -> None:
        """Opcode-dispatched fast path (state-equivalent to scalar
        :meth:`consume`).  The per-access vector-clock work dominates, so
        the win here is skipping event construction and isinstance
        chains, not the handlers themselves — which is why helgrind's
        batched slowdown stays the Table 1 maximum."""
        ops = batch.ops
        n = len(ops)
        if not n:
            return
        threads_a = batch.threads
        args_a = batch.args
        names = batch.names
        on_read = self._on_read
        on_write = self._on_write
        i = 0
        while i < n:
            op = ops[i]
            if op == OP_READ or op == OP_USER_TO_KERNEL:
                on_read(threads_a[i], args_a[i])
            elif op == OP_WRITE or op == OP_KERNEL_TO_USER:
                # kernel fills are ordered by the syscall: synchronised
                # writes by the issuing thread
                on_write(threads_a[i], args_a[i])
            elif op == OP_LOCK_ACQUIRE:
                tid = threads_a[i]
                lock = names[args_a[i]]
                lock_vc = self._locks.get(lock)
                if lock_vc is not None:
                    self._clock(tid).join(lock_vc)
                self._held.setdefault(tid, set()).add(lock)
            elif op == OP_LOCK_RELEASE:
                tid = threads_a[i]
                lock = names[args_a[i]]
                vc = self._clock(tid)
                lock_vc = self._locks.setdefault(lock, VectorClock())
                lock_vc.join(vc)
                vc.tick(tid)
                self._held.setdefault(tid, set()).discard(lock)
            elif op == OP_THREAD_START:
                parent = args_a[i]
                if parent:
                    self._clock(threads_a[i]).join(self._clock(parent))
            i += 1

    def _check_against(
        self, vc: VectorClock, stored: List[int], tid: int,
        addr: int, kind: str,
    ) -> None:
        # full-vector comparison, as DJIT+ performs on every access
        for index, other_clock in enumerate(stored):
            other_tid = index + 1
            if (
                other_clock
                and other_tid != tid
                and not vc.dominates_epoch(other_tid, other_clock)
            ):
                self._report(addr, kind, other_tid, tid)

    def _update_lockset(self, tid: int, addr: int, record: list) -> None:
        held = self._held.get(tid)
        lockset = record[2]
        if lockset is None:
            record[2] = set(held) if held else set()
            self._location_threads[addr] = tid
        else:
            if held:
                lockset &= held
            else:
                lockset.clear()
            if self._location_threads.get(addr) != tid and not lockset:
                self.lockset_suspects.add(addr)

    def _on_read(self, tid: int, addr: int) -> None:
        vc = self._clock(tid)  # registers the thread; fixes vector width
        record = self._record(addr)
        self._update_lockset(tid, addr, record)
        self._check_against(vc, record[0], tid, addr, "read-after-write")
        record[1][tid - 1] = vc.get(tid)

    def _on_write(self, tid: int, addr: int) -> None:
        vc = self._clock(tid)  # registers the thread; fixes vector width
        record = self._record(addr)
        self._update_lockset(tid, addr, record)
        writes = record[0]
        self._check_against(vc, writes, tid, addr, "write-after-write")
        reads = record[1]
        self._check_against(vc, reads, tid, addr, "write-after-read")
        for index in range(len(reads)):
            reads[index] = 0
        writes[tid - 1] = vc.get(tid)

    def finish(self) -> Dict[str, Any]:
        return {
            "races": list(self.races),
            "threads": len(self._threads),
            "lockset_suspects": len(self.lockset_suspects),
        }

    def space_cells(self) -> int:
        # DJIT+ keeps two full vector clocks plus a lockset per shadowed
        # location, reached through the three-level shadow table.
        width = max(1, self._width)
        cells = self._meta.space_cells()
        for record in self._records:
            cells += 2 * width + 1
            if record[2]:
                cells += len(record[2])
        for vc in self._threads.values():
            cells += len(vc.clocks)
        for vc in self._locks.values():
            cells += len(vc.clocks)
        return cells

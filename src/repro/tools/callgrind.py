"""mini-callgrind: call-graph profiling.

Callgrind [22] builds the dynamic call graph and attributes costs to
routines both exclusively (events executed in the routine's own body)
and inclusively (adding completed descendants), plus call-edge counts —
the classic gprof-style output.  Per memory event the work is one
counter bump on the current stack top; calls and returns maintain
per-thread stacks and the edge table.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, List, Tuple

from repro.core.events import (
    OP_CALL,
    OP_KERNEL_TO_USER,
    OP_RETURN,
    Call,
    Event,
    EventBatch,
    KernelToUser,
    Read,
    Return,
    UserToKernel,
    Write,
)
from repro.tools.base import AnalysisTool

__all__ = ["Callgrind"]


class Callgrind(AnalysisTool):
    name = "callgrind"

    def __init__(self) -> None:
        #: routine -> [calls, exclusive cost, inclusive cost]
        self.routines: Dict[str, List[int]] = defaultdict(lambda: [0, 0, 0])
        #: (caller, callee) -> call count
        self.edges: Dict[Tuple[str, str], int] = defaultdict(int)
        self._stacks: Dict[int, List[List[int]]] = defaultdict(list)
        self._names: Dict[int, List[str]] = defaultdict(list)

    def consume(self, event: Event) -> None:
        if isinstance(event, (Read, Write, UserToKernel, KernelToUser)):
            stack = self._stacks[event.thread]
            if stack:
                frame = stack[-1]
                frame[0] += 1  # exclusive events of the current routine
        elif isinstance(event, Call):
            names = self._names[event.thread]
            caller = names[-1] if names else "<root>"
            self.edges[(caller, event.routine)] += 1
            record = self.routines[event.routine]
            record[0] += 1
            self._stacks[event.thread].append([0, 0])  # [exclusive, descendants]
            names.append(event.routine)
        elif isinstance(event, Return):
            stack = self._stacks[event.thread]
            names = self._names[event.thread]
            if not stack:
                return
            exclusive, descendants = stack.pop()
            routine = names.pop()
            record = self.routines[routine]
            record[1] += exclusive
            record[2] += exclusive + descendants
            if stack:
                stack[-1][1] += exclusive + descendants

    def consume_batch(self, batch: EventBatch) -> None:
        """Opcode-dispatched fast path (state-equivalent to scalar
        :meth:`consume`).  Memory opcodes are 2/3 and 4/5 around the
        call/return pair, so one range test separates "bump the frame"
        from stack maintenance; the current thread's stack and name list
        stay bound to locals across runs of same-thread events."""
        ops = batch.ops
        n = len(ops)
        if not n:
            return
        threads_a = batch.threads
        args_a = batch.args
        batch_names = batch.names
        routines = self.routines
        edges = self.edges
        stacks = self._stacks
        names_map = self._names
        cur = None
        stack = []
        names = []

        i = 0
        while i < n:
            op = ops[i]
            if op <= OP_KERNEL_TO_USER:  # call/return/read/write/u2k/k2u
                tid = threads_a[i]
                if tid != cur:
                    stack = stacks[tid]
                    names = names_map[tid]
                    cur = tid
                if op == OP_CALL:
                    routine = batch_names[args_a[i]]
                    caller = names[-1] if names else "<root>"
                    edges[(caller, routine)] += 1
                    routines[routine][0] += 1
                    stack.append([0, 0])  # [exclusive, descendants]
                    names.append(routine)
                elif op == OP_RETURN:
                    if stack:
                        exclusive, descendants = stack.pop()
                        record = routines[names.pop()]
                        record[1] += exclusive
                        record[2] += exclusive + descendants
                        if stack:
                            stack[-1][1] += exclusive + descendants
                elif stack:  # read/write/u2k/k2u
                    stack[-1][0] += 1
            i += 1

    def finish(self) -> Dict[str, Any]:
        flat = {
            routine: {
                "calls": record[0],
                "exclusive": record[1],
                "inclusive": record[2],
            }
            for routine, record in self.routines.items()
        }
        return {"routines": flat, "edges": dict(self.edges)}

    def space_cells(self) -> int:
        return 3 * len(self.routines) + 2 * len(self.edges)

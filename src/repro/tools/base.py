"""Analysis-tool interface.

Table 1 of the paper compares aprof-drms against four reference Valgrind
tools (nulgrind, memcheck, callgrind, helgrind) and against plain aprof.
"Although the considered tools solve different analysis problems, all of
them share the same instrumentation infrastructure provided by
Valgrind" — here, the same role is played by the VM's event stream: every
tool is an :class:`AnalysisTool` consuming the same events, attached to
the machine as its sink, so measured slowdowns compare per-event analysis
work over identical instrumentation, exactly the comparison the paper
makes.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.core.events import Event, EventBatch

__all__ = ["AnalysisTool"]


class AnalysisTool:
    """Base class for event-stream analysis tools."""

    #: short tool name used in reports ("memcheck", "aprof-drms", ...)
    name = "tool"

    #: profiler kind for intra-trace partitioned replay (``"rms"`` or
    #: ``"drms"``; see :mod:`repro.tools.partition`).  ``None`` means the
    #: tool has no exact shard merge and always replays its trace whole.
    partition_kind: Optional[str] = None

    #: whether :meth:`consume_columnar` understands the run superops of
    #: :func:`repro.core.events.fuse_batch`.  The replay engines only
    #: hand *fused* batches to tools that set this; everything else
    #: keeps receiving plain opcode batches, so specialised
    #: ``consume_batch`` loops never meet an opcode they don't know.
    supports_superops = False

    def consume(self, event: Event) -> None:
        """Process one trace event (hot path)."""
        raise NotImplementedError

    def consume_batch(self, batch: EventBatch) -> None:
        """Process an opcode-encoded event batch.

        The default decodes each opcode back into a dataclass event and
        feeds :meth:`consume`, so any tool is batch-capable; the tools of
        the Table 1 harness override this with integer-opcode dispatch
        loops that never materialise event objects.  Overrides must be
        state-equivalent to the default (property-tested).
        """
        consume = self.consume
        for event in batch.iter_events():
            consume(event)

    def consume_columnar(self, batch: EventBatch) -> None:
        """Columnar-engine entry point.

        The default delegates to :meth:`consume_batch`, which is
        correct for any unfused batch (and for fused ones too when the
        tool inherits the generic decode loop above — ``iter_events``
        expands superops).  Tools with a native superop kernel set
        :attr:`supports_superops` and override.
        """
        self.consume_batch(batch)

    def finish(self) -> Dict[str, Any]:
        """End-of-run hook; returns the tool's findings summary."""
        return {}

    def space_cells(self) -> int:
        """Cells of shadow state currently held (space-overhead metric)."""
        return 0

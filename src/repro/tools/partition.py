"""Partitioned replay: one trace, many workers, an exact merged profile.

After PR 5 the slowest cell of a sweep is a *single serial replay* of
one large trace.  This module turns that replay into an embarrassingly
parallel job:

1. :func:`repro.core.tracefile.plan_partitions` cuts the v2 trace at
   depth-zero section boundaries (every shadow stack empty — the
   ``begin_trace()`` execution-boundary state) into byte ranges with
   balanced event counts;
2. each partition replays its range through the normal engines
   (columnar by default, with pipelined ranged decode) in a supervised
   process pool — a worker that times out or dies is retried with
   backoff and, failing that, that partition alone falls back to an
   inline replay in the parent;
3. the per-partition profiler shards fold back together with the exact
   associative ``merge()``.

Exactness (DESIGN.md §12): at a depth-zero cut the only state a later
partition cannot see is the *memory* prefix — global write timestamps
and per-thread access timestamps.  Every read classification except one
is invariant under that blindness; the exception is the **cold read**
(a plain-counted first read of a cell the partition never saw written
or accessed), which serially may be an *induced* first read when a
prefix write postdates the reading thread's last prefix access.  The
drms kernels therefore log cold reads when ``cold_reads`` is armed, and
:func:`merge_partition_shards` reclassifies them against the preceding
partitions' boundary summaries before merging — moving the unit from
the plain slot to the thread/kernel slot of the same routine.  The drms
value itself is already correct either way (both branches add one unit
and neither refunds an ancestor), so profiles need no fix-up at all;
only the read-kind split does.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.events import fuse_batch
from repro.core.policy import FULL_POLICY
from repro.core.rms import RmsProfiler
from repro.core.timestamping import DrmsProfiler
from repro.core.tracefile import (
    PartitionPlan,
    PipelineStats,
    TracePartition,
    iter_section_batches,
    pipeline_batches,
    plan_partitions,
)
from repro.obs.distributed import (
    FlightRecorder,
    SpanSidecar,
    TraceContext,
    flight_dump,
    sidecar_path,
)
from repro.tools.runner import (
    _MAX_BACKOFF,
    _jitter_rng,
    _terminate_pool,
    Degradation,
)

__all__ = [
    "PartitionShard",
    "PartitionedReplay",
    "replay_partition",
    "replay_partitioned",
    "merge_partition_shards",
    "resolve_partitions",
]

#: test hook: when this environment variable holds a partition index,
#: the pool worker assigned that partition exits hard (``os._exit``),
#: simulating an OOM-killed or crashed worker.  Guarded on actually
#: being inside a pool worker so the parent's inline fallback survives.
_KILL_ENV = "REPRO_PARTITION_TEST_KILL"


def resolve_partitions(partitions: Optional[int]) -> Optional[int]:
    """Normalise a ``--partitions`` value: ``None`` stays off, ``0``
    means auto (one partition per CPU), anything else passes through."""
    if partitions is None:
        return None
    if partitions < 0:
        raise ValueError("partitions must be >= 0")
    if partitions == 0:
        return os.cpu_count() or 1
    return partitions


def _make_profiler(kind: str, counter_limit: Optional[int] = None):
    if kind == "drms":
        return DrmsProfiler(
            policy=FULL_POLICY,
            counter_limit=counter_limit,
            keep_activations=False,
        )
    if kind == "rms":
        return RmsProfiler(keep_activations=False)
    raise ValueError(f"unknown partition kind {kind!r}")


@dataclass
class PartitionShard:
    """One profiler's state after replaying one partition.

    The profiler inside is post-``begin_trace()`` (shadow-free, hence
    cheap to pickle back from a worker); the shadow state it would have
    carried across the cut is condensed into ``last_write`` /
    ``last_access`` (drms only — the rms baseline needs no fix-up), and
    its partition-local cold reads are parked in ``cold_reads`` for
    :func:`merge_partition_shards`.
    """

    kind: str
    index: int
    partitions: int
    events: int
    elapsed: float
    space_cells: int
    profiler: object
    cold_reads: list = field(default_factory=list)
    last_write: dict = field(default_factory=dict)
    last_access: dict = field(default_factory=dict)
    decode_stall_s: float = 0.0
    backpressure_s: float = 0.0
    queue_depth_hwm: int = 0


def replay_partition(
    payload: bytes,
    part: TracePartition,
    kinds: Sequence[str],
    total: int,
    engine: str = "columnar",
    counter_limit: Optional[int] = None,
    depth: int = 4,
) -> List[PartitionShard]:
    """Replay one partition's byte range under each profiler kind.

    The columnar engine streams ranged sections (fused into run
    superops) through the pipelined decoder and records its
    backpressure stats; ``batched``/``scalar`` replay the same range
    through the other engines for the equivalence suite.
    """
    shards: List[PartitionShard] = []
    for kind in kinds:
        prof = _make_profiler(kind, counter_limit)
        if kind == "drms":
            prof.cold_reads = []
        stats = PipelineStats()
        start = time.perf_counter()
        if engine == "scalar":
            for batch in iter_section_batches(payload, part.start, part.end):
                for event in batch.iter_events():
                    prof.consume(event)
        elif engine == "batched":
            for batch in iter_section_batches(payload, part.start, part.end):
                prof.consume_batch(batch)
        else:
            sections = (
                fuse_batch(s)
                for s in iter_section_batches(payload, part.start, part.end)
            )
            for section in pipeline_batches(sections, depth=depth, stats=stats):
                prof.consume_columnar(section)
        elapsed = time.perf_counter() - start
        space = prof.space_cells()
        if kind == "drms":
            last_write, last_access = prof.boundary_summary()
            cold = prof.cold_reads or []
            prof.cold_reads = None
        else:
            last_write, last_access, cold = {}, {}, []
        prof.begin_trace()  # shard contract: shadow-free, mergeable
        shards.append(
            PartitionShard(
                kind=kind,
                index=part.index,
                partitions=total,
                events=part.events,
                elapsed=elapsed,
                space_cells=space,
                profiler=prof,
                cold_reads=cold,
                last_write=last_write,
                last_access=last_access,
                decode_stall_s=stats.decode_stall_s,
                backpressure_s=stats.backpressure_s,
                queue_depth_hwm=stats.queue_depth_hwm,
            )
        )
    return shards


def _subrange_payload(
    payload: bytes, part: TracePartition, body_start: int
) -> Tuple[bytes, TracePartition]:
    """Slice one partition's share of the trace into a standalone
    payload: the v2 header (magic + intern table + declared count)
    followed by just this partition's sections, with the partition
    descriptor rebased onto the new body.

    The pool ships each worker ``header + its sections`` instead of
    pickling the whole trace per task — per-worker transfer stays
    ``O(trace/partitions)``, so submission cost no longer scales with
    ``trace x workers``.  Ranged iteration does not enforce the
    declared-event total, so the unchanged header count is harmless.
    """
    sub = payload[:body_start] + payload[part.start : part.end]
    rebased = TracePartition(
        part.index,
        body_start,
        body_start + (part.end - part.start),
        part.sections,
        part.events,
    )
    return sub, rebased


def _open_partition_trace(
    trace: Optional[dict], process: str
) -> Tuple[object, Optional[SpanSidecar]]:
    """Build a (tracer, sidecar) pair for one partition process.

    Returns ``(NULL_TRACER, None)`` unless the trace context names a
    spans directory; otherwise the sidecar carries the job's trace
    context so the merger picks up every event in this file.
    """
    from repro.obs import NULL_TRACER, SpanTracer

    ctx = TraceContext.from_dict(trace)
    if ctx is None or not ctx.spans_dir:
        return NULL_TRACER, None
    tracer = SpanTracer(process_name=process)
    name = f"{ctx.job}__{process}" if ctx.job else process
    sidecar = SpanSidecar(
        sidecar_path(ctx.spans_dir, name),
        process=process,
        trace=ctx,
        anchor_epoch_us=tracer.anchor_epoch_us,
        worker=ctx.worker,
    )
    tracer.sink = sidecar
    FlightRecorder().attach(tracer)
    return tracer, sidecar


def _emit_shard_counters(tracer, shards: List[PartitionShard]) -> None:
    """Counter-track samples (Perfetto "C" events) from PipelineStats."""
    if not getattr(tracer, "enabled", False):
        return
    for shard in shards:
        track = f"p{shard.index}"
        tracer.counter(
            "partition.decode_stall_us",
            int(shard.decode_stall_s * 1e6),
            track=track,
        )
        tracer.counter(
            "partition.backpressure_us",
            int(shard.backpressure_s * 1e6),
            track=track,
        )
        tracer.counter(
            "partition.queue_depth_hwm", shard.queue_depth_hwm, track=track
        )


def _partition_worker(
    payload: bytes,
    part: TracePartition,
    kinds: Sequence[str],
    total: int,
    engine: str,
    counter_limit: Optional[int],
    trace: Optional[dict] = None,
) -> List[PartitionShard]:
    kill = os.environ.get(_KILL_ENV)
    if kill is not None and multiprocessing.parent_process() is not None:
        try:
            target = int(kill)
        except ValueError:
            target = -1
        if target == part.index:
            os._exit(13)
    worker_label = ""
    ctx = TraceContext.from_dict(trace)
    if ctx is not None:
        worker_label = ctx.worker or "pool"
    tracer, sidecar = _open_partition_trace(
        trace, f"{worker_label or 'pool'}.part{part.index}"
    )
    try:
        with tracer.span(
            "partition-replay",
            track=f"p{part.index}",
            partition=part.index,
            events=part.events,
            engine=engine,
            mode="pool",
        ):
            shards = replay_partition(
                payload,
                part,
                kinds,
                total,
                engine=engine,
                counter_limit=counter_limit,
            )
        _emit_shard_counters(tracer, shards)
        return shards
    finally:
        if sidecar is not None:
            sidecar.close()


def _reclassify_cold_reads(shards: List[PartitionShard]) -> int:
    """Re-run the induced-read test for every cold read against the
    preceding partitions' boundary summaries, mutating the shard
    profilers' ``read_counters`` in place.  Returns the number of reads
    reclassified.

    A cold read of ``addr`` by ``thread`` is serially *induced* iff a
    prefix write to ``addr`` postdates the thread's last prefix access
    of it — compared as ``(partition, local_count)`` pairs, which is
    valid because serial counts are monotone across partitions and each
    partition preserves its own event order.  Each shard's own
    summaries fold in only *after* its cold reads are classified, so
    classification sees exactly the strict prefix.
    """
    last_write: Dict[int, Tuple[int, int, int]] = {}
    last_access: Dict[Tuple[int, int], Tuple[int, int]] = {}
    moved = 0
    for shard in shards:
        counters = shard.profiler.read_counters
        for thread, base, run, rtn in shard.cold_reads:
            for addr in range(base, base + run):
                w = last_write.get(addr)
                if w is None:
                    continue
                acc = last_access.get((thread, addr))
                if acc is None or acc < (w[0], w[1]):
                    row = counters[rtn]
                    row[0] -= 1
                    row[1 if w[2] else 2] += 1
                    moved += 1
        p = shard.index
        for addr, (stamp, src) in shard.last_write.items():
            last_write[addr] = (p, stamp, src)
        for thread, mem in shard.last_access.items():
            for addr, stamp in mem.items():
                last_access[(thread, addr)] = (p, stamp)
    return moved


def merge_partition_shards(
    shard_rows: Sequence[Sequence[PartitionShard]],
) -> Dict[str, object]:
    """Fold per-partition shards into one profiler per kind.

    ``shard_rows`` holds one row per partition (any order; shards sort
    by index).  drms shards get the cold-read reclassification pass
    first, then everything reduces left-to-right with the exact
    ``merge()``.  The first shard's profiler is mutated and returned.
    """
    by_kind: Dict[str, List[PartitionShard]] = {}
    for row in shard_rows:
        for shard in row:
            by_kind.setdefault(shard.kind, []).append(shard)
    merged: Dict[str, object] = {}
    for kind, shards in by_kind.items():
        shards.sort(key=lambda s: s.index)
        indices = [s.index for s in shards]
        if indices != list(range(shards[-1].index + 1)):
            raise ValueError(
                f"cannot merge an incomplete shard set for {kind!r}: "
                f"have partitions {indices}"
            )
        if kind == "drms":
            _reclassify_cold_reads(shards)
        base = shards[0].profiler
        for shard in shards[1:]:
            base.merge(shard.profiler)
        merged[kind] = base
    return merged


@dataclass
class PartitionedReplay:
    """Everything one partitioned replay produced."""

    plan: PartitionPlan
    #: one row per partition, ascending index; each row holds one shard
    #: per requested kind
    shards: List[List[PartitionShard]]
    #: merged profiler per kind (exact — see module docstring)
    profilers: Dict[str, object]
    degradations: List[Degradation] = field(default_factory=list)
    #: end-to-end bytes-to-merged-profile wall time, parent-side
    elapsed: float = 0.0
    merge_time: float = 0.0
    cold_reads_reclassified: int = 0

    @property
    def max_space_cells(self) -> int:
        """Peak per-worker shadow footprint (max across partitions) —
        the partitioned analogue of a serial replay's space figure; an
        upper bound on any single process's shadow state, not on their
        sum."""
        return max(
            (s.space_cells for row in self.shards for s in row), default=0
        )


def replay_partitioned(
    payload: bytes,
    partitions: Optional[int] = None,
    plan: Optional[PartitionPlan] = None,
    kinds: Sequence[str] = ("drms",),
    engine: str = "columnar",
    counter_limit: Optional[int] = None,
    workers: Optional[int] = None,
    timeout: float = 120.0,
    max_retries: int = 2,
    backoff_base: float = 0.25,
    metrics=None,
    tracer=None,
    label: str = "partition",
    only: Optional[Sequence[int]] = None,
    merge: bool = True,
    trace: Optional[dict] = None,
) -> PartitionedReplay:
    """Partition ``payload``, replay the partitions in a supervised
    process pool, and merge the shards exactly.

    Pass either a precomputed ``plan`` (planning is cheap but callers
    timing the replay plan outside the timed region) or a ``partitions``
    request (``None``/``0`` = one per CPU).  Single-partition plans —
    requested or degraded-to — replay inline, no pool.  Worker failures
    follow the PR 2 supervision discipline: bounded retries with
    exponential backoff and jitter, then an inline serial fallback *for
    that partition only*, every decision recorded as a
    :class:`Degradation` (stage ``partition-replay``).  Never hangs;
    raises only if a partition fails even inline (a genuinely
    unreplayable trace).

    ``only`` restricts replay to the listed partition indices and
    ``merge=False`` skips the merge stage (``.profilers`` comes back
    empty) — together they let the sweep cache replay just its missing
    partition shards and fold them with shards it already has.

    ``trace`` is a distributed trace context
    (:meth:`~repro.obs.distributed.TraceContext.to_dict` form, as
    shipped inside a service lease).  When it names a spans directory,
    this process opens a crash-safe span sidecar of its own, every pool
    worker opens one per partition, and decode-stall/backpressure
    counter samples land on per-partition counter tracks — so the
    per-job merged Perfetto view shows one track per worker/partition.
    """
    if tracer is None:
        from repro.obs import NULL_TRACER

        tracer = NULL_TRACER
    trace_ctx = TraceContext.from_dict(trace)
    own_sidecar: Optional[SpanSidecar] = None
    if (
        trace_ctx is not None
        and trace_ctx.spans_dir
        and not getattr(tracer, "enabled", False)
    ):
        # No tracer was handed down (the service path): open this
        # process's own sidecar so inline replays and pool supervision
        # are visible in the job's merged trace.
        tracer, own_sidecar = _open_partition_trace(
            trace, f"{trace_ctx.worker or label}.partitions"
        )
    if plan is None:
        plan = plan_partitions(
            payload, resolve_partitions(partitions if partitions is not None else 0)
        )
    all_parts = plan.partitions
    parts = (
        all_parts
        if only is None
        else tuple(p for p in all_parts if p.index in set(only))
    )
    total = len(all_parts)
    degradations: List[Degradation] = []
    results: Dict[int, List[PartitionShard]] = {}
    start_all = time.perf_counter()

    def inline(part: TracePartition) -> None:
        with tracer.span(
            "partition-replay",
            track="partition",
            label=label,
            partition=part.index,
            mode="inline",
        ):
            results[part.index] = replay_partition(
                payload,
                part,
                kinds,
                total,
                engine=engine,
                counter_limit=counter_limit,
            )

    pool_workers = min(len(parts), workers or os.cpu_count() or 1)
    if len(parts) <= 1 or pool_workers <= 1:
        for part in parts:
            inline(part)
    else:
        pending: Dict[int, TracePartition] = {p.index: p for p in parts}
        attempts: Dict[int, int] = {p.index: 0 for p in parts}
        by_index: Dict[int, TracePartition] = {p.index: p for p in parts}
        # Partitions tile the body from its first byte, so the first
        # planned partition's start is the header/body split.
        body_start = all_parts[0].start
        round_no = 0
        with tracer.span(
            "partition-pool",
            track="partition",
            label=label,
            partitions=total,
            workers=pool_workers,
        ):
            while pending and round_no <= max_retries:
                round_no += 1
                if round_no > 1:
                    delay = backoff_base * 2.0 ** (round_no - 2)
                    delay = min(
                        delay + _jitter_rng.uniform(0, backoff_base),
                        _MAX_BACKOFF,
                    )
                    time.sleep(delay)
                try:
                    pool = ProcessPoolExecutor(
                        max_workers=min(pool_workers, len(pending))
                    )
                    futures = {}
                    for index, part in pending.items():
                        sub, rebased = _subrange_payload(
                            payload, part, body_start
                        )
                        futures[index] = pool.submit(
                            _partition_worker,
                            sub,
                            rebased,
                            kinds,
                            total,
                            engine,
                            counter_limit,
                            trace,
                        )
                except Exception as exc:  # no fork/spawn available
                    for index in pending:
                        degradations.append(
                            Degradation(
                                "partition-replay",
                                f"{label}:p{index}",
                                attempts[index] + 1,
                                f"pool unavailable: "
                                f"{type(exc).__name__}: {exc}",
                                "serial-fallback",
                            )
                        )
                    break
                stuck = False
                for index, future in futures.items():
                    try:
                        results[index] = future.result(timeout=timeout)
                        del pending[index]
                    except FutureTimeoutError:
                        attempts[index] += 1
                        stuck = True
                        exhausted = attempts[index] > max_retries
                        if exhausted:
                            del pending[index]
                        degradations.append(
                            Degradation(
                                "partition-replay",
                                f"{label}:p{index}",
                                attempts[index],
                                f"partition replay exceeded {timeout:g}s "
                                f"timeout",
                                "serial-fallback" if exhausted else "retried",
                            )
                        )
                    except Exception as exc:
                        # BrokenProcessPool and deterministic failures
                        # alike: retry in a fresh pool, then fall back.
                        attempts[index] += 1
                        exhausted = attempts[index] > max_retries
                        if exhausted:
                            del pending[index]
                        degradations.append(
                            Degradation(
                                "partition-replay",
                                f"{label}:p{index}",
                                attempts[index],
                                f"{type(exc).__name__}: {exc}",
                                "serial-fallback" if exhausted else "retried",
                            )
                        )
                if stuck:
                    _terminate_pool(pool)
                else:
                    pool.shutdown(wait=True)
        for index in sorted(set(p.index for p in parts) - set(results)):
            inline(by_index[index])

    if degradations and getattr(tracer, "enabled", False):
        flight = getattr(tracer, "flight", None)
        if flight is not None:
            for deg in degradations:
                flight.note("degradation", **deg.as_dict())
        flight_dump(
            tracer,
            f"partition-degradation: {label}",
            degradations=len(degradations),
            trace_id=trace_ctx.trace_id if trace_ctx else "",
            job=trace_ctx.job if trace_ctx else "",
        )

    merge_start = time.perf_counter()
    rows = [results[i] for i in sorted(results)]
    if own_sidecar is not None:
        # Counter samples for inline-replayed shards (pool workers emit
        # their own); then the whole-replay summary below.
        _emit_shard_counters(
            tracer, [s for i in sorted(results) for s in results[i]]
        )
    reclassified = 0
    profilers: Dict[str, object] = {}
    if merge:
        with tracer.span("partition-merge", track="partition", label=label):
            # Run the reclassification up front so its count is
            # observable, then clear the cold logs so
            # merge_partition_shards (which reclassifies internally for
            # standalone callers) can't reapply them.
            drms_shards = sorted(
                (s for row in rows for s in row if s.kind == "drms"),
                key=lambda s: s.index,
            )
            if drms_shards:
                reclassified = _reclassify_cold_reads(drms_shards)
                for shard in drms_shards:
                    shard.cold_reads = []
            profilers = merge_partition_shards(rows)
            for kind in kinds:
                if kind not in profilers:
                    # Empty trace (zero partitions): an empty profile,
                    # same as a serial replay of zero events.
                    empty = _make_profiler(kind, counter_limit)
                    empty.begin_trace()
                    profilers[kind] = empty
    merge_time = time.perf_counter() - merge_start
    elapsed = time.perf_counter() - start_all

    if metrics is not None and getattr(metrics, "enabled", False):
        labels = {"label": label}
        metrics.gauge("partition.count", labels).set(total)
        metrics.gauge("partition.imbalance", labels).set(
            round(plan.imbalance, 6)
        )
        if merge:
            metrics.histogram("partition.merge_us", labels).observe(
                max(1, int(merge_time * 1e6))
            )
            metrics.counter("partition.cold_reads_reclassified", labels).inc(
                reclassified
            )
        for row in rows:
            for shard in row:
                slabels = {
                    "label": label,
                    "kind": shard.kind,
                    "partition": str(shard.index),
                }
                metrics.gauge("partition.replay_us", slabels).set(
                    max(1, int(shard.elapsed * 1e6))
                )
                metrics.gauge("partition.events", slabels).set(shard.events)
                metrics.histogram(
                    "partition.decode_stall_us", {"label": label}
                ).observe(int(shard.decode_stall_s * 1e6))
                metrics.histogram(
                    "partition.backpressure_us", {"label": label}
                ).observe(int(shard.backpressure_s * 1e6))
    if own_sidecar is not None:
        own_sidecar.close()
    return PartitionedReplay(
        plan=plan,
        shards=rows,
        profilers=profilers,
        degradations=degradations,
        elapsed=elapsed,
        merge_time=merge_time,
        cold_reads_reclassified=reclassified,
    )

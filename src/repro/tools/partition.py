"""Partitioned replay: one trace, many workers, an exact merged profile.

After PR 5 the slowest cell of a sweep is a *single serial replay* of
one large trace.  This module turns that replay into an embarrassingly
parallel job:

1. :func:`repro.core.tracefile.plan_partitions` cuts the v2 trace at
   section boundaries — depth-zero ones for free, mid-activation ones
   with per-thread carry-in summaries — into byte ranges with balanced
   event counts;
2. each partition replays its range through the normal engines
   (columnar by default, with pipelined ranged decode) in a supervised
   process pool — a worker that times out or dies is retried with
   backoff and, failing that, that partition alone falls back to an
   inline replay in the parent;
3. the per-partition profiler shards **stream back** and fold through
   the exact associative ``merge()`` as they arrive (buffered to index
   order), so the final merge overlaps the slowest worker instead of
   waiting behind a barrier.

Exactness (DESIGN.md §12 for depth-zero cuts, §15 for per-thread
cuts): the state a later partition cannot see is the *prefix* — global
write timestamps, per-thread access timestamps, and (for a
mid-activation cut) the live activations themselves.  Carried
activations are re-seeded as placeholder frames whose partial sums,
seed returns and read attributions ship back in the shard; the merge
reassembles their exact totals from the per-shard partials
(:class:`_CarryState`).  Read classifications are invariant under
prefix-blindness except for the **cold read** (a counted read of a
cell the partition never saw written or accessed), which the kernels
log when ``cold_reads`` is armed; the merge re-runs the serial
decision against the preceding partitions' boundary summaries as a
cross-thread ``(partition, thread, local_count)`` timestamp fix-up —
moving a unit between read-kind slots (drms), refunding the deepest
carried ancestor, or removing a unit the serial replay never counted.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import FIRST_COMPLETED
from concurrent.futures import wait as futures_wait
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.events import fuse_batch
from repro.core.policy import FULL_POLICY
from repro.core.rms import RmsProfiler
from repro.core.timestamping import DrmsProfiler
from repro.core.tracefile import (
    PartitionPlan,
    PipelineStats,
    TracePartition,
    iter_section_batches,
    pipeline_batches,
    plan_partitions,
)
from repro.obs.distributed import (
    FlightRecorder,
    SpanSidecar,
    TraceContext,
    flight_dump,
    sidecar_path,
)
from repro.tools.pool import (
    SharedTrace,
    active_segments,
    attached_view,
    get_pool,
    pool_stats,
    shm_available,
)
from repro.tools.runner import (
    _MAX_BACKOFF,
    _jitter_rng,
    Degradation,
)

__all__ = [
    "PartitionShard",
    "PartitionedReplay",
    "replay_partition",
    "replay_partitioned",
    "merge_partition_shards",
    "resolve_partitions",
]

#: test hook: when this environment variable holds a partition index,
#: the pool worker assigned that partition exits hard (``os._exit``),
#: simulating an OOM-killed or crashed worker.  Guarded on actually
#: being inside a pool worker so the parent's inline fallback survives.
_KILL_ENV = "REPRO_PARTITION_TEST_KILL"


def resolve_partitions(partitions: Optional[int]) -> Optional[int]:
    """Normalise a ``--partitions`` value: ``None`` stays off, ``0``
    means auto (one partition per CPU), anything else passes through."""
    if partitions is None:
        return None
    if partitions < 0:
        raise ValueError("partitions must be >= 0")
    if partitions == 0:
        return os.cpu_count() or 1
    return partitions


def _make_profiler(kind: str, counter_limit: Optional[int] = None):
    if kind == "drms":
        return DrmsProfiler(
            policy=FULL_POLICY,
            counter_limit=counter_limit,
            keep_activations=False,
        )
    if kind == "rms":
        return RmsProfiler(keep_activations=False)
    raise ValueError(f"unknown partition kind {kind!r}")


@dataclass
class PartitionShard:
    """One profiler's state after replaying one partition.

    The profiler inside is post-``begin_trace()`` (shadow-free, hence
    cheap to pickle back from a worker); the shadow state it would have
    carried across the cut is condensed into ``last_write`` /
    ``last_access`` (drms only — the rms baseline needs no fix-up), and
    its partition-local cold reads are parked in ``cold_reads`` for
    :func:`merge_partition_shards`.
    """

    kind: str
    index: int
    partitions: int
    events: int
    elapsed: float
    space_cells: int
    profiler: object
    cold_reads: list = field(default_factory=list)
    last_write: dict = field(default_factory=dict)
    last_access: dict = field(default_factory=dict)
    decode_stall_s: float = 0.0
    backpressure_s: float = 0.0
    queue_depth_hwm: int = 0
    #: planner carry the partition was seeded with: ``((thread, ((seq,
    #: routine, call_cost), ...)), ...)`` bottom-to-top per thread.
    carry_in: tuple = ()
    #: resolved carry out of this partition: ``((thread, ((seq,
    #: routine, call_cost, partial, push_ts), ...)), ...)`` — the
    #: planner identities zipped with the worker's live-stack partial
    #: sums and push timestamps.  Shards are self-describing: the merge
    #: needs no plan object, so cached shard sets stay mergeable.
    carry_out: tuple = ()
    #: ``(thread, partial, raw_return_cost)`` per carried activation
    #: that returned inside this partition, in pop order.
    carried_returns: tuple = ()


def replay_partition(
    payload: bytes,
    part: TracePartition,
    kinds: Sequence[str],
    total: int,
    engine: str = "columnar",
    counter_limit: Optional[int] = None,
    depth: int = 4,
    carry_aware: bool = False,
) -> List[PartitionShard]:
    """Replay one partition's byte range under each profiler kind.

    The columnar engine streams ranged sections (fused into run
    superops) through the pipelined decoder and records its
    backpressure stats; ``batched``/``scalar`` replay the same range
    through the other engines for the equivalence suite.

    A partition with a nonempty ``carry_in`` starts mid-activation:
    the profilers are seeded with placeholder frames for the carried
    activations, and the shard ships back their partial sums, seed
    returns and (for rms too, which otherwise needs no fix-up) the
    cold-read log, so :class:`_CarryState` can reassemble exact totals.
    ``carry_aware`` marks a partition that is itself cut at depth zero
    but belongs to a plan with mid-activation cuts elsewhere — its
    boundary summaries must still ship (for both kinds) because a later
    partition's fix-up may look up prefix accesses from it.
    """
    carried = bool(carry_aware or part.carry_in or part.carry_out_ids)
    shards: List[PartitionShard] = []
    for kind in kinds:
        prof = _make_profiler(kind, counter_limit)
        if kind == "drms" or part.carry_in:
            prof.cold_reads = []
        if part.carry_in:
            prof.seed_partition(part.carry_in)
        stats = PipelineStats()
        start = time.perf_counter()
        if engine == "scalar":
            for batch in iter_section_batches(payload, part.start, part.end):
                for event in batch.iter_events():
                    prof.consume(event)
        elif engine == "batched":
            for batch in iter_section_batches(payload, part.start, part.end):
                prof.consume_batch(batch)
        else:
            sections = (
                fuse_batch(s)
                for s in iter_section_batches(payload, part.start, part.end)
            )
            for section in pipeline_batches(sections, depth=depth, stats=stats):
                prof.consume_columnar(section)
        elapsed = time.perf_counter() - start
        space = prof.space_cells()
        if kind == "drms" or carried:
            last_write, last_access = prof.boundary_summary()
            cold = prof.cold_reads if prof.cold_reads is not None else []
            prof.cold_reads = None
        else:
            last_write, last_access, cold = {}, {}, []
        if carried:
            live, rets = prof.take_partition_state()
            carry_out = _resolve_carry_out(part, live)
        else:
            rets, carry_out = [], ()
        prof.begin_trace()  # shard contract: shadow-free, mergeable
        shards.append(
            PartitionShard(
                kind=kind,
                index=part.index,
                partitions=total,
                events=part.events,
                elapsed=elapsed,
                space_cells=space,
                profiler=prof,
                cold_reads=cold,
                last_write=last_write,
                last_access=last_access,
                decode_stall_s=stats.decode_stall_s,
                backpressure_s=stats.backpressure_s,
                queue_depth_hwm=stats.queue_depth_hwm,
                carry_in=tuple(part.carry_in),
                carry_out=carry_out,
                carried_returns=tuple(rets),
            )
        )
    return shards


def _resolve_carry_out(part: TracePartition, live: Dict[int, tuple]) -> tuple:
    """Zip the planner's carry-out identities with the worker's actual
    end-of-partition live stacks (``(partial, push_ts)`` bottom-to-top
    per thread).  Positions align because both describe the same serial
    stack at the same boundary; any mismatch means the plan and the
    trace disagree, which is unrecoverable."""
    out = []
    for thread, ids in part.carry_out_ids:
        entries = live.pop(thread, ())
        if len(entries) != len(ids):
            raise ValueError(
                f"partition {part.index}: thread {thread} carried out "
                f"{len(entries)} live activations, plan expected {len(ids)}"
            )
        out.append(
            (
                thread,
                tuple(
                    (seq, rtn, call_cost, partial, ts)
                    for (seq, rtn, call_cost), (partial, ts) in zip(
                        ids, entries
                    )
                ),
            )
        )
    if live:
        extra = sorted(live)
        raise ValueError(
            f"partition {part.index}: threads {extra} ended with live "
            f"activations the plan did not carry out"
        )
    return tuple(out)


def _subrange_payload(
    payload: bytes, part: TracePartition, body_start: int
) -> Tuple[bytes, TracePartition]:
    """Slice one partition's share of the trace into a standalone
    payload: the v2 header (magic + intern table + declared count)
    followed by just this partition's sections, with the partition
    descriptor rebased onto the new body.

    The pool ships each worker ``header + its sections`` instead of
    pickling the whole trace per task — per-worker transfer stays
    ``O(trace/partitions)``, so submission cost no longer scales with
    ``trace x workers``.  Ranged iteration does not enforce the
    declared-event total, so the unchanged header count is harmless.
    """
    sub = payload[:body_start] + payload[part.start : part.end]
    rebased = TracePartition(
        part.index,
        body_start,
        body_start + (part.end - part.start),
        part.sections,
        part.events,
        carry_in=part.carry_in,
        carry_out_ids=part.carry_out_ids,
    )
    return sub, rebased


def _open_partition_trace(
    trace: Optional[dict], process: str
) -> Tuple[object, Optional[SpanSidecar]]:
    """Build a (tracer, sidecar) pair for one partition process.

    Returns ``(NULL_TRACER, None)`` unless the trace context names a
    spans directory; otherwise the sidecar carries the job's trace
    context so the merger picks up every event in this file.
    """
    from repro.obs import NULL_TRACER, SpanTracer

    ctx = TraceContext.from_dict(trace)
    if ctx is None or not ctx.spans_dir:
        return NULL_TRACER, None
    tracer = SpanTracer(process_name=process)
    name = f"{ctx.job}__{process}" if ctx.job else process
    sidecar = SpanSidecar(
        sidecar_path(ctx.spans_dir, name),
        process=process,
        trace=ctx,
        anchor_epoch_us=tracer.anchor_epoch_us,
        worker=ctx.worker,
    )
    tracer.sink = sidecar
    FlightRecorder().attach(tracer)
    return tracer, sidecar


def _emit_shard_counters(tracer, shards: List[PartitionShard]) -> None:
    """Counter-track samples (Perfetto "C" events) from PipelineStats."""
    if not getattr(tracer, "enabled", False):
        return
    for shard in shards:
        track = f"p{shard.index}"
        tracer.counter(
            "partition.decode_stall_us",
            int(shard.decode_stall_s * 1e6),
            track=track,
        )
        tracer.counter(
            "partition.backpressure_us",
            int(shard.backpressure_s * 1e6),
            track=track,
        )
        tracer.counter(
            "partition.queue_depth_hwm", shard.queue_depth_hwm, track=track
        )


def _check_test_kill(kill: Optional[str], index: int) -> None:
    """Honour the crash-injection hook inside a pool worker.

    The kill spec is captured parent-side at submit time and shipped as
    a task argument — a persistent warm pool may have forked *before*
    the test set the environment variable, so workers cannot rely on
    inheriting it.  The direct environment read stays as a fallback for
    code paths that call the worker entry point themselves.
    """
    spec = kill if kill is not None else os.environ.get(_KILL_ENV)
    if spec is not None and multiprocessing.parent_process() is not None:
        try:
            target = int(spec)
        except ValueError:
            target = -1
        if target == index:
            os._exit(13)


def _partition_worker(
    payload,
    part: TracePartition,
    kinds: Sequence[str],
    total: int,
    engine: str,
    counter_limit: Optional[int],
    trace: Optional[dict] = None,
    carry_aware: bool = False,
    kill: Optional[str] = None,
) -> List[PartitionShard]:
    _check_test_kill(kill, part.index)
    worker_label = ""
    ctx = TraceContext.from_dict(trace)
    if ctx is not None:
        worker_label = ctx.worker or "pool"
    tracer, sidecar = _open_partition_trace(
        trace, f"{worker_label or 'pool'}.part{part.index}"
    )
    try:
        with tracer.span(
            "partition-replay",
            track=f"p{part.index}",
            partition=part.index,
            events=part.events,
            engine=engine,
            mode="pool",
        ):
            shards = replay_partition(
                payload,
                part,
                kinds,
                total,
                engine=engine,
                counter_limit=counter_limit,
                carry_aware=carry_aware,
            )
        _emit_shard_counters(tracer, shards)
        return shards
    finally:
        if sidecar is not None:
            sidecar.close()


def _partition_worker_shm(
    segment: str,
    size: int,
    part: TracePartition,
    kinds: Sequence[str],
    total: int,
    engine: str,
    counter_limit: Optional[int],
    trace: Optional[dict] = None,
    carry_aware: bool = False,
    kill: Optional[str] = None,
) -> List[PartitionShard]:
    """Pool entry point for shared-memory residency: attach to the
    trace segment (cached per worker across tasks) and decode this
    partition's byte range through a zero-copy memoryview — the task
    pickles only offsets, never payload bytes."""
    _check_test_kill(kill, part.index)
    view = attached_view(segment, size)
    try:
        return _partition_worker(
            view,
            part,
            kinds,
            total,
            engine,
            counter_limit,
            trace,
            carry_aware,
            kill,
        )
    finally:
        view.release()


class _CarryState:
    """Strict-prefix fold of one profiler kind's shards: cold-read
    fix-ups, carried-activation ledgers, and the final reassembly.

    The state is fed shards **in index order** (:meth:`fold_shard`) —
    each shard's cold reads are corrected against the prefix summaries
    *before* its own summaries fold in, so every decision replays the
    serial one.  Timestamps from different partitions compare as
    ``(partition, thread, local_count)`` tuples — valid because serial
    counts are monotone across partitions and each partition preserves
    its own event order (renumbering is order-preserving within a
    partition).

    Cold-read fix-ups, in serial-priority order (DESIGN.md §15; the
    priority mirrors ``DrmsProfiler.on_read``):

    1. **induced** (drms only): a prefix write postdates the thread's
       last prefix access — the unit moves from the plain slot to the
       kernel/thread slot of the same routine; drms value unchanged,
       and the serial induced branch never refunds, so this case is
       exclusive;
    2. **removal**: the reading activation is a carried seed the
       thread had already accessed the cell under (prefix access at or
       after the seed's push) — serially the read was never counted:
       the unit leaves both the seed's ledger and (drms) the plain
       slot;
    3. **seed refund**: the read stands, but the serial replay refunds
       the deepest live ancestor whose push precedes the prefix access
       — all such ancestors are carried seeds (in-partition frames
       postdate any prefix stamp), so the refund lands in a ledger.

    Carried-activation reassembly (:meth:`assemble`): each carried
    activation's exact drms is the sum of its per-partition partials
    (carry-out entries plus its seed return) plus ledger corrections
    plus its carried children's totals — folded top-of-stack downward,
    exactly the suppressed serial pop-inheritance.
    """

    def __init__(self, kind: str):
        self.kind = kind
        self.drms = kind == "drms"
        self.next_index = 0
        #: addr -> (partition, stamp, src) from drms write memories
        self.last_write: Dict[int, Tuple[int, int, int]] = {}
        #: (thread, addr) -> (partition, stamp)
        self.last_access: Dict[Tuple[int, int], Tuple[int, int]] = {}
        #: (thread, seq) -> (partition, stamp) of the real push
        self.push_ts: Dict[Tuple[int, int], Tuple[int, int]] = {}
        #: (thread, seq) -> summed partials + fix-up corrections
        self.ledger: Dict[Tuple[int, int], int] = {}
        #: (thread, seq) -> raw return cost (stamped at the seed pop)
        self.ret_cost: Dict[Tuple[int, int], int] = {}
        #: (thread, seq) -> (routine, call_cost, stack_position)
        self.meta: Dict[Tuple[int, int], Tuple[str, int, int]] = {}
        #: (thread, seq) -> parent (thread, seq) or None at position 0
        self.parent: Dict[Tuple[int, int], Optional[Tuple[int, int]]] = {}
        self.fixups = 0

    def fold_shard(self, shard: PartitionShard) -> None:
        if shard.index != self.next_index:
            raise ValueError(
                f"carry fold for {self.kind!r} expected partition "
                f"{self.next_index}, got {shard.index}"
            )
        self.next_index += 1
        self._fix_cold_reads(shard)
        self._fold_returns(shard)
        self._fold_carry_out(shard)
        p = shard.index
        for addr, (stamp, src) in shard.last_write.items():
            self.last_write[addr] = (p, stamp, src)
        for thread, mem in shard.last_access.items():
            for addr, stamp in mem.items():
                self.last_access[(thread, addr)] = (p, stamp)

    def _fix_cold_reads(self, shard: PartitionShard) -> None:
        drms = self.drms
        counters = shard.profiler.read_counters if drms else None
        carry_map = dict(shard.carry_in)
        lw, la, push, ledger = (
            self.last_write,
            self.last_access,
            self.push_ts,
            self.ledger,
        )
        for thread, base, run, rtn, carried, stack_len in shard.cold_reads:
            top_is_seed = carried > 0 and stack_len == carried
            live_seeds = carry_map.get(thread, ())[:carried] if carried else ()
            top_key = (thread, live_seeds[-1][0]) if top_is_seed else None
            for addr in range(base, base + run):
                s = la.get((thread, addr))
                if drms:
                    w = lw.get(addr)
                    if w is not None and (s is None or s < (w[0], w[1])):
                        # Serially induced: counted either way, never
                        # refunded — the slot move is the whole fix-up.
                        row = counters[rtn]
                        row[0] -= 1
                        row[1 if w[2] else 2] += 1
                        self.fixups += 1
                        continue
                if s is None or not carried:
                    continue
                if top_is_seed and s >= push[top_key]:
                    # Serially never counted: the thread had already
                    # accessed the cell while the seed top was live.
                    ledger[top_key] = ledger.get(top_key, 0) - 1
                    if drms:
                        counters[rtn][0] -= 1
                    self.fixups += 1
                    continue
                cands = live_seeds[:-1] if top_is_seed else live_seeds
                for sid, _rtn, _cost in reversed(cands):
                    key = (thread, sid)
                    if push[key] <= s:
                        ledger[key] = ledger.get(key, 0) - 1
                        self.fixups += 1
                        break

    def _fold_returns(self, shard: PartitionShard) -> None:
        """Seed pops surface here: the j-th pop for a thread is the
        j-th-from-the-top entry of that thread's carry-in (stack
        discipline), carrying the final partial and raw return cost."""
        carry_map = dict(shard.carry_in)
        pops: Dict[int, int] = {}
        for thread, partial, raw_cost in shard.carried_returns:
            acts = carry_map[thread]
            j = pops.get(thread, 0)
            pops[thread] = j + 1
            seq = acts[len(acts) - 1 - j][0]
            key = (thread, seq)
            self.ledger[key] = self.ledger.get(key, 0) + partial
            self.ret_cost[key] = raw_cost

    def _fold_carry_out(self, shard: PartitionShard) -> None:
        """Accumulate live-stack partials; the first appearance of an
        activation is its real push (later appearances are re-seeded
        placeholders whose small stamps must not win)."""
        p = shard.index
        for thread, acts in shard.carry_out:
            for pos, (seq, rtn, call_cost, partial, ts) in enumerate(acts):
                key = (thread, seq)
                self.ledger[key] = self.ledger.get(key, 0) + partial
                if key not in self.push_ts:
                    self.push_ts[key] = (p, ts)
                    self.meta[key] = (rtn, call_cost, pos)
                    self.parent[key] = (
                        (thread, acts[pos - 1][0]) if pos else None
                    )

    def assemble(self) -> List[Tuple[str, int, int, int]]:
        """Resolve every carried activation to a ``(routine, thread,
        drms, net_cost)`` collect row, folding each child's total into
        its parent's — top of stack first, so totals are complete
        before they propagate down."""
        acc: Dict[Tuple[int, int], int] = {key: 0 for key in self.meta}
        rows: List[Tuple[str, int, int, int]] = []
        by_depth = sorted(
            self.meta.items(), key=lambda kv: kv[1][2], reverse=True
        )
        for key, (rtn, call_cost, _pos) in by_depth:
            if key not in self.ret_cost:
                raise ValueError(
                    f"carried activation {key} never returned: "
                    f"incomplete shard set"
                )
            total = self.ledger.get(key, 0) + acc[key]
            par = self.parent[key]
            if par is not None:
                acc[par] += total
            rows.append((rtn, key[0], total, self.ret_cost[key] - call_cost))
        return rows


def merge_partition_shards(
    shard_rows: Sequence[Sequence[PartitionShard]],
) -> Dict[str, object]:
    """Fold per-partition shards into one profiler per kind.

    ``shard_rows`` holds one row per partition (any order; shards sort
    by index).  Each kind folds left-to-right through a
    :class:`_CarryState` (cold-read fix-ups against the strict prefix,
    carried-activation ledgers) and the exact ``merge()``, then the
    carried activations collect into the merged profile.  The first
    shard's profiler is mutated and returned.  Shards are
    self-describing, so cached rows merge without the original plan.
    """
    by_kind: Dict[str, List[PartitionShard]] = {}
    for row in shard_rows:
        for shard in row:
            by_kind.setdefault(shard.kind, []).append(shard)
    merged: Dict[str, object] = {}
    for kind, shards in by_kind.items():
        shards.sort(key=lambda s: s.index)
        indices = [s.index for s in shards]
        if indices != list(range(shards[-1].index + 1)):
            raise ValueError(
                f"cannot merge an incomplete shard set for {kind!r}: "
                f"have partitions {indices}"
            )
        state = _CarryState(kind)
        base: Optional[object] = None
        for shard in shards:
            state.fold_shard(shard)
            if base is None:
                base = shard.profiler
            else:
                base.merge(shard.profiler)
        for rtn, thread, total, cost in state.assemble():
            base.profiles.collect(rtn, thread, total, cost)
        merged[kind] = base
    return merged


class _ShardFolder:
    """Streaming left-fold of shard rows in partition-index order.

    Rows may arrive in any order (workers race); arrivals ahead of the
    fold frontier buffer until the gap fills, then fold through
    :class:`_CarryState` and the exact ``merge()``.  This is what lets
    the final merge overlap the slowest worker: by the time the last
    shard lands, every other shard is already folded.
    """

    def __init__(self) -> None:
        self.states: Dict[str, _CarryState] = {}
        self.bases: Dict[str, object] = {}
        self.buffer: Dict[int, List[PartitionShard]] = {}
        self.next_index = 0
        self.fold_time = 0.0

    def add(self, index: int, row: List[PartitionShard]) -> None:
        self.buffer[index] = row
        while self.next_index in self.buffer:
            start = time.perf_counter()
            for shard in self.buffer.pop(self.next_index):
                state = self.states.get(shard.kind)
                if state is None:
                    state = self.states[shard.kind] = _CarryState(shard.kind)
                state.fold_shard(shard)
                base = self.bases.get(shard.kind)
                if base is None:
                    self.bases[shard.kind] = shard.profiler
                else:
                    base.merge(shard.profiler)
            self.next_index += 1
            self.fold_time += time.perf_counter() - start

    @property
    def fixups(self) -> int:
        return sum(state.fixups for state in self.states.values())

    def finish(self) -> Dict[str, object]:
        if self.buffer:
            raise ValueError(
                f"cannot merge an incomplete shard set: partition "
                f"{self.next_index} never arrived"
            )
        start = time.perf_counter()
        for kind, state in self.states.items():
            base = self.bases[kind]
            for rtn, thread, total, cost in state.assemble():
                base.profiles.collect(rtn, thread, total, cost)
        self.fold_time += time.perf_counter() - start
        return dict(self.bases)


@dataclass
class PartitionedReplay:
    """Everything one partitioned replay produced."""

    plan: PartitionPlan
    #: one row per partition, ascending index; each row holds one shard
    #: per requested kind
    shards: List[List[PartitionShard]]
    #: merged profiler per kind (exact — see module docstring)
    profilers: Dict[str, object]
    degradations: List[Degradation] = field(default_factory=list)
    #: end-to-end bytes-to-merged-profile wall time, parent-side
    elapsed: float = 0.0
    merge_time: float = 0.0
    cold_reads_reclassified: int = 0

    @property
    def max_space_cells(self) -> int:
        """Peak per-worker shadow footprint (max across partitions) —
        the partitioned analogue of a serial replay's space figure; an
        upper bound on any single process's shadow state, not on their
        sum."""
        return max(
            (s.space_cells for row in self.shards for s in row), default=0
        )


def replay_partitioned(
    payload: bytes,
    partitions: Optional[int] = None,
    plan: Optional[PartitionPlan] = None,
    kinds: Sequence[str] = ("drms",),
    engine: str = "columnar",
    counter_limit: Optional[int] = None,
    workers: Optional[int] = None,
    timeout: float = 120.0,
    max_retries: int = 2,
    backoff_base: float = 0.25,
    metrics=None,
    tracer=None,
    label: str = "partition",
    only: Optional[Sequence[int]] = None,
    merge: bool = True,
    trace: Optional[dict] = None,
    stream: bool = True,
) -> PartitionedReplay:
    """Partition ``payload``, replay the partitions in a supervised
    process pool, and merge the shards exactly.

    Pass either a precomputed ``plan`` (planning is cheap but callers
    timing the replay plan outside the timed region) or a ``partitions``
    request (``None``/``0`` = one per CPU).  Single-partition plans —
    requested or degraded-to — replay inline, no pool.  Worker failures
    follow the PR 2 supervision discipline: bounded retries with
    exponential backoff and jitter, then an inline serial fallback *for
    that partition only*, every decision recorded as a
    :class:`Degradation` (stage ``partition-replay``).  Never hangs;
    raises only if a partition fails even inline (a genuinely
    unreplayable trace).

    ``only`` restricts replay to the listed partition indices and
    ``merge=False`` skips the merge stage (``.profilers`` comes back
    empty) — together they let the sweep cache replay just its missing
    partition shards and fold them with shards it already has.

    ``stream`` (the default) folds shards through the exact merge *as
    workers return them* — buffered to partition-index order — so the
    merge overlaps the slowest worker; ``stream=False`` keeps the old
    barrier behaviour (collect everything, then merge), which the
    partition benchmark uses as its comparison baseline.  Both produce
    byte-identical profiles.

    ``trace`` is a distributed trace context
    (:meth:`~repro.obs.distributed.TraceContext.to_dict` form, as
    shipped inside a service lease).  When it names a spans directory,
    this process opens a crash-safe span sidecar of its own, every pool
    worker opens one per partition, and decode-stall/backpressure
    counter samples land on per-partition counter tracks — so the
    per-job merged Perfetto view shows one track per worker/partition.
    """
    if tracer is None:
        from repro.obs import NULL_TRACER

        tracer = NULL_TRACER
    trace_ctx = TraceContext.from_dict(trace)
    own_sidecar: Optional[SpanSidecar] = None
    if (
        trace_ctx is not None
        and trace_ctx.spans_dir
        and not getattr(tracer, "enabled", False)
    ):
        # No tracer was handed down (the service path): open this
        # process's own sidecar so inline replays and pool supervision
        # are visible in the job's merged trace.
        tracer, own_sidecar = _open_partition_trace(
            trace, f"{trace_ctx.worker or label}.partitions"
        )
    if plan is None:
        plan = plan_partitions(
            payload, resolve_partitions(partitions if partitions is not None else 0)
        )
    all_parts = plan.partitions
    parts = (
        all_parts
        if only is None
        else tuple(p for p in all_parts if p.index in set(only))
    )
    total = len(all_parts)
    carry_aware = plan.carried > 0
    degradations: List[Degradation] = []
    results: Dict[int, List[PartitionShard]] = {}
    folder = _ShardFolder() if merge and stream and only is None else None
    start_all = time.perf_counter()

    def record(index: int, row: List[PartitionShard]) -> None:
        results[index] = row
        if folder is not None:
            folder.add(index, row)

    def inline(part: TracePartition) -> None:
        with tracer.span(
            "partition-replay",
            track="partition",
            label=label,
            partition=part.index,
            mode="inline",
        ):
            record(
                part.index,
                replay_partition(
                    payload,
                    part,
                    kinds,
                    total,
                    engine=engine,
                    counter_limit=counter_limit,
                    carry_aware=carry_aware,
                ),
            )

    pool_workers = min(len(parts), workers or os.cpu_count() or 1)
    # On a box that cannot express parallelism at all, worker processes
    # can only lose to their own scheduling contention (measured ~5-7%
    # at 2 workers on one core even with a warm pool over shm), so the
    # engine degrades to replaying each partition inline — the merged
    # profile is identical either way.  An active crash-injection spec
    # or REPRO_PARTITION_FORCE_POOL keeps the pool path for tests that
    # exercise worker supervision and shm residency specifically.
    single_cpu = (
        (os.cpu_count() or 1) < 2
        and os.environ.get(_KILL_ENV) is None
        and not os.environ.get("REPRO_PARTITION_FORCE_POOL")
    )
    if len(parts) <= 1 or pool_workers <= 1 or single_cpu:
        for part in parts:
            inline(part)
    else:
        pending: Dict[int, TracePartition] = {p.index: p for p in parts}
        attempts: Dict[int, int] = {p.index: 0 for p in parts}
        by_index: Dict[int, TracePartition] = {p.index: p for p in parts}
        # Partitions tile the body from its first byte, so the first
        # planned partition's start is the header/body split.
        body_start = all_parts[0].start
        round_no = 0
        # Trace residency: the payload goes into one shared-memory
        # segment for the whole replay (all partitions, all retry
        # rounds); tasks ship only byte offsets and workers decode
        # their ranges through zero-copy attached views.  Platforms
        # without working shm fall back to pickled subrange payloads.
        shared: Optional[SharedTrace] = None
        if shm_available():
            try:
                shared = SharedTrace(payload)
            except Exception:
                shared = None
        # Crash-injection spec is captured here, parent-side: the warm
        # pool's workers may have forked before the test set the
        # variable, so it travels as a task argument.
        kill_spec = os.environ.get(_KILL_ENV)
        pool = get_pool()
        try:
            with tracer.span(
                "partition-pool",
                track="partition",
                label=label,
                partitions=total,
                workers=pool_workers,
                residency="shm" if shared is not None else "pickle",
            ):
                while pending and round_no <= max_retries:
                    round_no += 1
                    if round_no > 1:
                        delay = backoff_base * 2.0 ** (round_no - 2)
                        delay = min(
                            delay + _jitter_rng.uniform(0, backoff_base),
                            _MAX_BACKOFF,
                        )
                        time.sleep(delay)
                    # The parent replays the last pending partition
                    # itself while the pool handles the rest: one fewer
                    # dispatch round-trip and shard pickle, and on a
                    # single-CPU box the 2-way topology collapses to
                    # parent + one worker — the shape that breaks even
                    # with serial.  Skipped on retry rounds (those are
                    # re-dispatches of failures) and under an active
                    # crash-injection spec (the kill hook must land in a
                    # worker process to mean anything).
                    inline_index: Optional[int] = None
                    if round_no == 1 and kill_spec is None and len(pending) > 1:
                        inline_index = max(pending)
                    try:
                        want = len(pending) - (1 if inline_index is not None else 0)
                        pool.ensure(min(pool_workers, max(1, want)))
                        futures = {}
                        for index, part in pending.items():
                            if index == inline_index:
                                continue
                            if shared is not None:
                                futures[index] = pool.submit(
                                    _partition_worker_shm,
                                    shared.name,
                                    shared.size,
                                    part,
                                    kinds,
                                    total,
                                    engine,
                                    counter_limit,
                                    trace,
                                    carry_aware,
                                    kill_spec,
                                )
                            else:
                                sub, rebased = _subrange_payload(
                                    payload, part, body_start
                                )
                                futures[index] = pool.submit(
                                    _partition_worker,
                                    sub,
                                    rebased,
                                    kinds,
                                    total,
                                    engine,
                                    counter_limit,
                                    trace,
                                    carry_aware,
                                    kill_spec,
                                )
                    except Exception as exc:  # no fork/spawn available
                        for index in pending:
                            degradations.append(
                                Degradation(
                                    "partition-replay",
                                    f"{label}:p{index}",
                                    attempts[index] + 1,
                                    f"pool unavailable: "
                                    f"{type(exc).__name__}: {exc}",
                                    "serial-fallback",
                                )
                            )
                        break
                    if inline_index is not None:
                        # Workers are already crunching their ranges;
                        # the parent does its own share before turning
                        # to collection.
                        try:
                            inline(by_index[inline_index])
                            del pending[inline_index]
                        except Exception as exc:
                            attempts[inline_index] += 1
                            degradations.append(
                                Degradation(
                                    "partition-replay",
                                    f"{label}:p{inline_index}",
                                    attempts[inline_index],
                                    f"{type(exc).__name__}: {exc}",
                                    "retried",
                                )
                            )
                    # Collect in completion order against one shared
                    # round deadline: finished shards stream into the
                    # fold immediately instead of queueing behind an
                    # earlier-submitted straggler.
                    fut_index = {f: i for i, f in futures.items()}
                    not_done = set(futures.values())
                    deadline = time.monotonic() + timeout
                    while not_done:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            break
                        done, not_done = futures_wait(
                            not_done,
                            timeout=remaining,
                            return_when=FIRST_COMPLETED,
                        )
                        for future in done:
                            index = fut_index[future]
                            try:
                                record(index, future.result())
                                del pending[index]
                            except Exception as exc:
                                # BrokenProcessPool and deterministic
                                # failures alike: retry in a healed
                                # pool, then fall back.
                                attempts[index] += 1
                                exhausted = attempts[index] > max_retries
                                if exhausted:
                                    del pending[index]
                                degradations.append(
                                    Degradation(
                                        "partition-replay",
                                        f"{label}:p{index}",
                                        attempts[index],
                                        f"{type(exc).__name__}: {exc}",
                                        "serial-fallback"
                                        if exhausted
                                        else "retried",
                                    )
                                )
                    stuck = bool(not_done)
                    for future in not_done:
                        index = fut_index[future]
                        attempts[index] += 1
                        exhausted = attempts[index] > max_retries
                        if exhausted:
                            del pending[index]
                        degradations.append(
                            Degradation(
                                "partition-replay",
                                f"{label}:p{index}",
                                attempts[index],
                                f"partition replay exceeded {timeout:g}s "
                                f"timeout",
                                "serial-fallback" if exhausted else "retried",
                            )
                        )
                    if stuck:
                        # A wedged worker cannot be left warm: kill the
                        # pool; the next round (or caller) respawns it.
                        pool.terminate()
                    # A healthy pool stays warm for the next round,
                    # tool, cell, or sweep — that is the whole point.
        finally:
            # Unlink on every path out — success, degradation, or an
            # exception — so no /dev/shm segment outlives the replay.
            if shared is not None:
                shared.unlink()
        for index in sorted(set(p.index for p in parts) - set(results)):
            inline(by_index[index])

    if degradations and getattr(tracer, "enabled", False):
        flight = getattr(tracer, "flight", None)
        if flight is not None:
            for deg in degradations:
                flight.note("degradation", **deg.as_dict())
        flight_dump(
            tracer,
            f"partition-degradation: {label}",
            degradations=len(degradations),
            trace_id=trace_ctx.trace_id if trace_ctx else "",
            job=trace_ctx.job if trace_ctx else "",
        )

    rows = [results[i] for i in sorted(results)]
    if own_sidecar is not None:
        # Counter samples for inline-replayed shards (pool workers emit
        # their own); then the whole-replay summary below.
        _emit_shard_counters(
            tracer, [s for i in sorted(results) for s in results[i]]
        )
    reclassified = 0
    merge_time = 0.0
    profilers: Dict[str, object] = {}
    if merge:
        with tracer.span("partition-merge", track="partition", label=label):
            if folder is None:
                # Barrier mode (or an explicit ``only`` subset, which
                # must raise on incompleteness just like a standalone
                # merge): fold everything now, in index order.
                folder_ = _ShardFolder()
                for index in sorted(results):
                    folder_.add(index, results[index])
            else:
                folder_ = folder
            profilers = folder_.finish()
            reclassified = folder_.fixups
            merge_time = folder_.fold_time
            for kind in kinds:
                if kind not in profilers:
                    # Empty trace (zero partitions): an empty profile,
                    # same as a serial replay of zero events.
                    empty = _make_profiler(kind, counter_limit)
                    empty.begin_trace()
                    profilers[kind] = empty
    elapsed = time.perf_counter() - start_all

    if metrics is not None and getattr(metrics, "enabled", False):
        labels = {"label": label}
        metrics.gauge("partition.count", labels).set(total)
        if plan.total_events:
            # A plan with no countable events has no meaningful balance
            # figure: leave the gauge unset rather than publishing the
            # 0.0 the property degrades to.
            metrics.gauge("partition.imbalance", labels).set(
                round(plan.imbalance, 6)
            )
        metrics.gauge("partition.carried", labels).set(plan.carried)
        pstats = pool_stats()
        metrics.gauge("pool.workers", labels).set(pstats["workers"])
        metrics.gauge("pool.tasks", labels).set(pstats["tasks"])
        metrics.gauge("pool.tasks_reused", labels).set(pstats["tasks_reused"])
        # Sampled after the unlink above: a nonzero reading here IS a
        # leak, which is exactly what the gauge exists to catch.
        metrics.gauge("shm.segments_active", labels).set(active_segments())
        if merge:
            metrics.histogram("partition.merge_us", labels).observe(
                max(1, int(merge_time * 1e6))
            )
            metrics.counter("partition.cold_reads_reclassified", labels).inc(
                reclassified
            )
        for row in rows:
            for shard in row:
                slabels = {
                    "label": label,
                    "kind": shard.kind,
                    "partition": str(shard.index),
                }
                metrics.gauge("partition.replay_us", slabels).set(
                    max(1, int(shard.elapsed * 1e6))
                )
                metrics.gauge("partition.events", slabels).set(shard.events)
                metrics.histogram(
                    "partition.decode_stall_us", {"label": label}
                ).observe(int(shard.decode_stall_s * 1e6))
                metrics.histogram(
                    "partition.backpressure_us", {"label": label}
                ).observe(int(shard.backpressure_s * 1e6))
    if own_sidecar is not None:
        own_sidecar.close()
    return PartitionedReplay(
        plan=plan,
        shards=rows,
        profilers=profilers,
        degradations=degradations,
        elapsed=elapsed,
        merge_time=merge_time,
        cold_reads_reclassified=reclassified,
    )

"""Measurement harness: record the trace once, replay it under each tool.

Regenerates the Table 1 / Figure 16 methodology:

* **native execution** — the machine runs uninstrumented
  (``instrument=False``): primitive ops skip event construction, the
  closest analogue of running the benchmark outside Valgrind;
* **recorded execution** — the machine runs instrumented *once* with a
  batched opcode encoder attached (:meth:`Machine.set_batch_sink`),
  producing the compact struct-of-arrays trace of
  :class:`repro.core.events.EventBatch`.  The recording time is the
  shared instrumentation-infrastructure cost every tool pays — exactly
  what nulgrind isolates in the paper;
* **tool replay** — each tool's :meth:`consume_batch` replays the same
  recorded batch, so per-tool analysis work is measured over *identical*
  event streams instead of re-executing the workload ``tools x repeats``
  times.  Tool time = record time + best replay time;
* **slowdown** — tool time over native time (geometric means across a
  suite, as in Table 1);
* **space overhead** — (workload cells + tool shadow cells) over
  workload cells.

Because the trace is an artifact, replays are embarrassingly parallel:
``measure_workload(..., parallel=N)`` ships the serialised batch
(``EventBatch.to_bytes``) to ``N`` worker processes and replays the
tools concurrently.  Workers are *supervised*: every replay has a
timeout, transient failures (a stuck or killed worker, a broken pool)
are retried a bounded number of times with exponential backoff and
jitter, and a tool that keeps failing degrades to serial replay — or,
if it fails even serially, is excluded from the measurement.  Every
such decision is recorded as a :class:`Degradation` on the returned
measurement, so a run never hangs and never dies with an opaque
``BrokenProcessPool``.

Wall-clock timing of small workloads is noisy, so native runs and
replays take the best of ``repeats`` attempts; every replay builds a
fresh tool so state never leaks between runs.
"""

from __future__ import annotations

import math
import random
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.events import EventBatch, count_superops, fuse_batch
from repro.core.tracefile import iter_section_batches, pipeline_batches
from repro.tools.pool import (
    SharedTrace,
    attached_view,
    get_pool,
    shm_available,
)
from repro.tools.aprof import AprofTool
from repro.tools.aprof_drms import AprofDrmsTool
from repro.tools.base import AnalysisTool
from repro.tools.callgrind import Callgrind
from repro.tools.helgrind import Helgrind
from repro.tools.memcheck import Memcheck
from repro.tools.nulgrind import Nulgrind
from repro.vm import Machine

__all__ = [
    "DEFAULT_TOOLS",
    "ENGINES",
    "DEFAULT_ENGINE",
    "Degradation",
    "ToolMeasurement",
    "WorkloadMeasurement",
    "record_trace",
    "replay_tool",
    "replay_tool_streaming",
    "measure_workload",
    "publish_measurement",
    "geometric_mean",
    "suite_summary",
]

#: selectable replay engines: ``scalar`` decodes dataclass events and
#: feeds ``consume`` (the reference loop), ``batched`` replays the
#: opcode batch through ``consume_batch`` (the PR-1 fast path, kept
#: intact as the measurement baseline), ``columnar`` fuses run superops
#: once per workload and replays through ``consume_columnar`` with
#: pipelined section decode in worker processes.  All three are
#: bit-identical in profiling output (property-tested).
ENGINES = ("scalar", "batched", "columnar")

#: the default replay engine
DEFAULT_ENGINE = "columnar"

#: ceiling on the inter-retry backoff sleep, seconds
_MAX_BACKOFF = 5.0

#: private RNG for backoff jitter.  Jitter only paces retries — it must
#: never draw from (and thereby perturb) the global ``random`` stream,
#: which seeded workloads and experiment scripts rely on for
#: reproducibility.  OS-entropy seeded: pacing needs no determinism.
_jitter_rng = random.Random()

#: factories for the six tools of Table 1, in the paper's column order
DEFAULT_TOOLS: Dict[str, Callable[[], AnalysisTool]] = {
    "nulgrind": Nulgrind,
    "memcheck": Memcheck,
    "callgrind": Callgrind,
    "helgrind": Helgrind,
    "aprof": AprofTool,
    "aprof-drms": AprofDrmsTool,
}


@dataclass
class ToolMeasurement:
    """One tool's numbers on one workload."""

    tool: str
    wall_time: float
    slowdown: float
    space_cells: int
    space_overhead: float
    events: int
    #: this tool's own replay time (``wall_time`` minus the shared
    #: record time)
    replay_time: float = 0.0


@dataclass(frozen=True)
class Degradation:
    """One self-healing action the measurement pipeline had to take.

    ``stage`` is where the problem surfaced (``parallel-replay`` or
    ``serial-replay``), ``attempt`` which try failed, and ``action``
    what the supervisor did about it (``retried``, ``serial-fallback``
    or ``excluded``)."""

    stage: str
    tool: str
    attempt: int
    reason: str
    action: str

    def as_dict(self) -> dict:
        """The report spelling shared by every JSON surface (overhead,
        sweep, service job reports).  ``tool`` doubles as the cell id
        for sweep/service stages — the key is named ``unit`` here so
        the consumer does not have to guess."""
        return {
            "stage": self.stage,
            "unit": self.tool,
            "attempt": self.attempt,
            "reason": self.reason,
            "action": self.action,
        }


@dataclass
class WorkloadMeasurement:
    """All measurements for one workload."""

    workload: str
    native_time: float
    native_cells: int
    tools: Dict[str, ToolMeasurement] = field(default_factory=dict)
    #: wall time of the single instrumented recording run (the shared
    #: infrastructure cost included in every tool's ``wall_time``)
    record_time: float = 0.0
    #: events in the recorded trace
    trace_events: int = 0
    #: serialised size of the recorded trace, when a parallel or
    #: partitioned path forced serialisation (0 = never serialised);
    #: ``trace_bytes / trace_events`` is the encoding-efficiency gauge
    trace_bytes: int = 0
    #: self-healing actions taken while measuring (empty = clean run);
    #: a tool that was ``excluded`` has no entry in :attr:`tools`
    degradations: List[Degradation] = field(default_factory=list)
    #: replay engine used for the tool measurements (see :data:`ENGINES`)
    engine: str = "batched"
    #: run superops produced by fusing the recorded trace (0 unless the
    #: columnar engine ran) — the fusion-effectiveness observable
    superops_fused: int = 0
    #: effective partition count for partition-capable tools (``None``
    #: when partitioned replay was not requested; 1 when the trace
    #: degraded to a single partition — see :attr:`partition_reason`)
    partitions: Optional[int] = None
    #: why the planner could not split the trace (``None`` = split fine
    #: or partitioning off)
    partition_reason: Optional[str] = None

    @property
    def excluded_tools(self) -> List[str]:
        """Tools the supervisor dropped from this measurement, sorted."""
        return sorted(
            {d.tool for d in self.degradations if d.action == "excluded"}
        )


def record_trace(build: Callable[[], Machine]) -> Tuple[float, EventBatch, Machine]:
    """Run the workload instrumented once, recording the opcode trace.

    Returns ``(wall_time, batch, machine)``; the wall time covers the
    instrumented execution plus encoding — the infrastructure cost that
    every tool-attached run would pay.
    """
    machine = build()
    machine.instrument = True
    machine.set_batch_sink()  # record; no consumer
    start = time.perf_counter()
    machine.run()
    elapsed = time.perf_counter() - start
    batch = machine.encoded_trace
    assert batch is not None
    return elapsed, batch, machine


def replay_tool(
    factory: Callable[[], AnalysisTool],
    batch: EventBatch,
    repeats: int = 3,
    engine: str = "batched",
    fused: Optional[EventBatch] = None,
) -> Tuple[float, int]:
    """Replay ``batch`` under ``repeats`` fresh tools; returns the best
    wall time and the matching tool's shadow-state cells.

    ``engine`` selects the consumption path (see :data:`ENGINES`).
    Under ``columnar``, superop-capable tools replay the fused form of
    the batch — pass ``fused`` to reuse one fusion across tools (the
    runner fuses once per workload); otherwise it is computed here,
    outside the timed region.  Tools without superop support replay
    the plain batch through :meth:`~AnalysisTool.consume_columnar`.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r} (choose from {ENGINES})")
    best_time = math.inf
    space = 0
    events = None
    if engine == "scalar":
        # decode once, outside the timed region: the scalar engine
        # measures the per-event consume loop, not batch decoding
        events = list(batch.iter_events())
    for _ in range(repeats):
        tool = factory()
        if engine == "scalar":
            consume = tool.consume
            start = time.perf_counter()
            for event in events:
                consume(event)
            elapsed = time.perf_counter() - start
        elif engine == "columnar":
            if tool.supports_superops:
                if fused is None:
                    fused = fuse_batch(batch)
                payload = fused
            else:
                payload = batch
            start = time.perf_counter()
            tool.consume_columnar(payload)
            elapsed = time.perf_counter() - start
        else:
            start = time.perf_counter()
            tool.consume_batch(batch)
            elapsed = time.perf_counter() - start
        if elapsed < best_time:
            best_time = elapsed
            space = tool.space_cells()
    return best_time, space


def replay_tool_streaming(
    factory: Callable[[], AnalysisTool],
    payload: bytes,
    repeats: int = 3,
    depth: int = 4,
) -> Tuple[float, int]:
    """Columnar replay of a *serialised* trace with pipelined decode.

    Sections are decoded zero-copy (:func:`iter_section_batches`) — and
    fused, for superop-capable tools — on a reader thread that runs up
    to ``depth`` sections ahead of the consuming kernel
    (:func:`pipeline_batches`), so decode and CRC work overlap with
    profiling instead of serialising with it.  The measured wall time
    is end-to-end bytes-to-profile, the figure that decode pipelining
    actually improves.
    """
    best_time = math.inf
    space = 0
    for _ in range(repeats):
        tool = factory()
        if tool.supports_superops:
            sections = (fuse_batch(s) for s in iter_section_batches(payload))
        else:
            sections = iter_section_batches(payload)
        consume = tool.consume_columnar
        start = time.perf_counter()
        for section in pipeline_batches(sections, depth=depth):
            consume(section)
        elapsed = time.perf_counter() - start
        if elapsed < best_time:
            best_time = elapsed
            space = tool.space_cells()
    return best_time, space


def _replay_worker(
    factory: Callable[[], AnalysisTool],
    payload: bytes,
    repeats: int,
    engine: str = "batched",
) -> Tuple[float, int]:
    """Process-pool entry point: decode the shipped trace and replay.

    The columnar engine streams sections through the pipelined decoder;
    the others decode the whole payload up front (the pre-existing
    behaviour, kept as the measurement baseline).
    """
    if engine == "columnar":
        return replay_tool_streaming(factory, payload, repeats)
    return replay_tool(factory, EventBatch.from_bytes(payload), repeats, engine)


def _replay_worker_shm(
    factory: Callable[[], AnalysisTool],
    segment: str,
    size: int,
    repeats: int,
    engine: str = "batched",
) -> Tuple[float, int]:
    """Pool entry point for shared-memory residency: the task pickles a
    factory and a segment name; the trace bytes never cross the pipe.

    The columnar engine decodes sections zero-copy straight off the
    attached view; the batch engines materialise the payload locally
    (one in-worker copy, still no pickling) because ``from_bytes``
    wants an immutable buffer to slice.
    """
    view = attached_view(segment, size)
    try:
        if engine == "columnar":
            return replay_tool_streaming(factory, view, repeats)
        return replay_tool(
            factory, EventBatch.from_bytes(bytes(view)), repeats, engine
        )
    finally:
        view.release()


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down even when a worker is wedged: cancel what can be
    cancelled, then terminate the worker processes outright.  Without
    this a single stuck replay would hang ``shutdown(wait=True)``
    forever."""
    processes = list(getattr(pool, "_processes", {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for process in processes:
        if process.is_alive():
            process.terminate()
    for process in processes:
        process.join(timeout=5)


def _replay_all_supervised(
    tools: Dict[str, Callable[[], AnalysisTool]],
    payload: bytes,
    repeats: int,
    workers: int,
    timeout: float,
    max_retries: int,
    backoff_base: float,
    engine: str = "batched",
) -> Tuple[Dict[str, Tuple[float, int]], List[Degradation]]:
    """Replay every tool in worker processes under supervision.

    The serialised trace lives in one shared-memory segment for the
    whole call (every tool, every retry round); tasks pickle a factory
    and a segment name, and the process-wide warm pool
    (:func:`repro.tools.pool.get_pool`) serves every round instead of
    forking a fresh executor each time.  Transient failures — a replay
    exceeding ``timeout``, a worker dying and breaking the pool — are
    retried up to ``max_retries`` times with exponential backoff plus
    jitter (the pool heals between rounds).  A tool that exhausts its
    retries, or fails for a deterministic reason (its factory cannot be
    pickled, its replay raises), is left out of the returned results
    for the caller's serial fallback.  Every decision is recorded as a
    :class:`Degradation`.  Never raises, never hangs, never leaks a
    segment.
    """
    results: Dict[str, Tuple[float, int]] = {}
    degradations: List[Degradation] = []
    attempts: Dict[str, int] = {name: 0 for name in tools}
    pending: Dict[str, Callable[[], AnalysisTool]] = dict(tools)
    shared = None
    if shm_available():
        try:
            shared = SharedTrace(payload)
        except Exception:
            shared = None
    pool = get_pool()
    round_no = 0
    try:
        while pending and round_no <= max_retries:
            round_no += 1
            if round_no > 1:
                # exponential backoff with jitter before healing the
                # pool (jitter only shifts pacing, never results)
                delay = backoff_base * 2.0 ** (round_no - 2)
                delay = min(
                    delay + _jitter_rng.uniform(0, backoff_base), _MAX_BACKOFF
                )
                time.sleep(delay)
            try:
                pool.ensure(min(workers, len(pending)))
                if shared is not None:
                    futures = {
                        name: pool.submit(
                            _replay_worker_shm,
                            factory,
                            shared.name,
                            shared.size,
                            repeats,
                            engine,
                        )
                        for name, factory in pending.items()
                    }
                else:
                    futures = {
                        name: pool.submit(
                            _replay_worker, factory, payload, repeats, engine
                        )
                        for name, factory in pending.items()
                    }
            except Exception as exc:  # no fork/spawn available at all
                for name in pending:
                    degradations.append(
                        Degradation(
                            "parallel-replay",
                            name,
                            attempts[name] + 1,
                            f"pool unavailable: {type(exc).__name__}: {exc}",
                            "serial-fallback",
                        )
                    )
                return results, degradations
            stuck = False
            for name, future in futures.items():
                try:
                    results[name] = future.result(timeout=timeout)
                    del pending[name]
                except FutureTimeoutError:
                    attempts[name] += 1
                    stuck = True
                    exhausted = attempts[name] > max_retries
                    if exhausted:
                        # Retry budget spent: hand the tool to the
                        # caller's serial fallback *now*.  Leaving it
                        # in ``pending`` would resubmit it next round,
                        # contradicting the ``serial-fallback`` record
                        # below.
                        del pending[name]
                    degradations.append(
                        Degradation(
                            "parallel-replay",
                            name,
                            attempts[name],
                            f"replay exceeded {timeout:g}s timeout",
                            "serial-fallback" if exhausted else "retried",
                        )
                    )
                except BrokenProcessPool as exc:
                    attempts[name] += 1
                    exhausted = attempts[name] > max_retries
                    if exhausted:
                        del pending[name]
                    degradations.append(
                        Degradation(
                            "parallel-replay",
                            name,
                            attempts[name],
                            f"worker pool broke: {exc}",
                            "serial-fallback" if exhausted else "retried",
                        )
                    )
                except Exception as exc:
                    # A deterministic failure (unpicklable factory, a
                    # tool raising on the trace): retrying in a process
                    # cannot help — go straight to the serial fallback.
                    attempts[name] = max_retries + 1
                    del pending[name]
                    degradations.append(
                        Degradation(
                            "parallel-replay",
                            name,
                            1,
                            f"{type(exc).__name__}: {exc}",
                            "serial-fallback",
                        )
                    )
            if stuck:
                # A wedged worker cannot be left warm; the next round's
                # ensure() respawns the pool.
                pool.terminate()
    finally:
        if shared is not None:
            shared.unlink()
    return results, degradations


def measure_workload(
    name: str,
    build: Callable[[], Machine],
    tools: Optional[Dict[str, Callable[[], AnalysisTool]]] = None,
    repeats: int = 3,
    parallel: Optional[int] = None,
    replay_timeout: float = 120.0,
    max_retries: int = 2,
    backoff_base: float = 0.25,
    metrics=None,
    tracer=None,
    engine: str = DEFAULT_ENGINE,
    partitions: Optional[int] = None,
) -> WorkloadMeasurement:
    """Measure native and per-tool execution of one workload factory.

    ``parallel=N`` replays the recorded trace under the tools in ``N``
    supervised worker processes instead of serially; results are
    identical because every replay consumes the same recorded batch.
    Each parallel replay gets ``replay_timeout`` seconds and up to
    ``max_retries`` retries (exponential backoff starting at
    ``backoff_base`` seconds, with jitter) before degrading to serial
    replay; a tool failing even serially is excluded.  Self-healing
    actions are reported in ``.degradations`` — the call itself never
    hangs or raises on worker trouble.

    ``partitions`` switches partition-capable tools (those with a
    ``partition_kind`` — aprof and aprof-drms) to *intra-trace*
    parallel replay: the recorded trace is cut at depth-zero section
    boundaries, the ranges replay in a supervised process pool, and the
    shards merge exactly (see :mod:`repro.tools.partition`).  ``0``
    means one partition per CPU; ``None`` keeps partitioning off.
    Composes with ``parallel``, which still fans the remaining tools
    out across workers.  Partitioned replay times are end-to-end
    bytes-to-merged-profile (like the streaming path), so they include
    ranged decode and the merge.  An unsplittable trace degrades to a
    single partition; ``.partition_reason`` says why.

    ``metrics`` (a :class:`repro.obs.MetricsRegistry`) receives the
    measurement via :func:`publish_measurement`; ``tracer`` (a
    :class:`repro.obs.SpanTracer`) gets one span per phase — native,
    record, and the replay block — so a suite sweep renders as a
    Perfetto timeline.  Both default to off and cost nothing then.

    ``engine`` selects the replay path for every tool (see
    :data:`ENGINES`); recording is always unfused, and under the
    columnar engine the batch is fused into run superops exactly once,
    shared by all in-process replays.  Reported event counts are always
    logical (unfused) counts.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r} (choose from {ENGINES})")
    if parallel is not None and parallel < 1:
        raise ValueError("parallel must be >= 1")
    if replay_timeout <= 0:
        raise ValueError("replay_timeout must be > 0")
    if max_retries < 0:
        raise ValueError("max_retries must be >= 0")
    if tools is None:
        tools = DEFAULT_TOOLS
    if tracer is None:
        from repro.obs import NULL_TRACER

        tracer = NULL_TRACER

    native_time = math.inf
    native_cells = 0
    with tracer.span("native", track="runner", workload=name):
        for _ in range(repeats):
            machine = build()
            machine.instrument = False
            start = time.perf_counter()
            machine.run()
            elapsed = time.perf_counter() - start
            native_time = min(native_time, elapsed)
            native_cells = max(native_cells, machine.space_cells())
    native_cells = max(native_cells, 1)

    with tracer.span("record", track="runner", workload=name):
        record_time, batch, _machine = record_trace(build)
    events = len(batch)

    fused: Optional[EventBatch] = None
    superops = 0
    if engine == "columnar":
        # Fuse once per workload, outside every timed region; all
        # in-process replays share it (workers re-fuse locally, also
        # outside their timed regions).
        fused = fuse_batch(batch)
        superops = count_superops(fused)[0]

    # Partition planning happens once per workload, outside every timed
    # region (the per-replay timed work is bytes-to-merged-profile).
    partition_tools: Dict[str, str] = {}
    partition_plan = None
    payload: Optional[bytes] = None
    eff_partitions: Optional[int] = None
    if partitions is not None:
        from repro.core.tracefile import plan_partitions
        from repro.tools.partition import resolve_partitions

        eff_partitions = resolve_partitions(partitions)
        # The machine marked an execution boundary per completed run;
        # serialising with them keeps every begin_trace() point on a
        # section boundary, so the planner gets its depth-zero cuts.
        payload = batch.to_bytes(boundaries=_machine.trace_boundaries)
        partition_plan = plan_partitions(payload, eff_partitions)
        partition_tools = {
            tool_name: kind
            for tool_name, factory in tools.items()
            if (kind := getattr(factory, "partition_kind", None)) is not None
        }

    supervised = parallel is not None and parallel > 1
    if supervised and payload is None:
        # One serialisation serves every supervised round (and, with
        # shm, every worker attaches the same copy).
        payload = batch.to_bytes()
    replays: Dict[str, Tuple[float, int]] = {}
    degradations: List[Degradation] = []
    with tracer.span(
        "replay",
        track="runner",
        workload=name,
        mode="parallel" if supervised else "serial",
    ):
        if supervised:
            replays, degradations = _replay_all_supervised(
                {
                    tool_name: factory
                    for tool_name, factory in tools.items()
                    if tool_name not in partition_tools
                },
                payload,
                repeats,
                parallel,
                replay_timeout,
                max_retries,
                backoff_base,
                engine,
            )
        if partition_tools:
            from repro.tools.partition import replay_partitioned
        for tool_name, kind in partition_tools.items():
            try:
                best_time = math.inf
                space = 0
                for _ in range(repeats):
                    rep = replay_partitioned(
                        payload,
                        plan=partition_plan,
                        kinds=(kind,),
                        engine=engine,
                        workers=eff_partitions,
                        timeout=replay_timeout,
                        max_retries=max_retries,
                        backoff_base=backoff_base,
                        metrics=metrics,
                        tracer=tracer,
                        label=tool_name,
                    )
                    degradations.extend(rep.degradations)
                    if rep.elapsed < best_time:
                        best_time = rep.elapsed
                        space = rep.max_space_cells
                replays[tool_name] = (best_time, space)
            except Exception as exc:
                # Partitioned replay failing outright (not a worker
                # hiccup — those are handled inside) falls back to the
                # plain serial path below.
                degradations.append(
                    Degradation(
                        "partition-replay",
                        tool_name,
                        1,
                        f"{type(exc).__name__}: {exc}",
                        "serial-fallback",
                    )
                )
        for tool_name, tool_factory in tools.items():
            if tool_name in replays:
                continue
            if supervised:
                # Graceful degradation: the pool could not produce a
                # result for this tool, so replay it serially — and if
                # even that fails, exclude the tool rather than losing
                # the run.
                try:
                    replays[tool_name] = replay_tool(
                        tool_factory, batch, repeats, engine, fused
                    )
                except Exception as exc:
                    degradations.append(
                        Degradation(
                            "serial-replay",
                            tool_name,
                            1,
                            f"{type(exc).__name__}: {exc}",
                            "excluded",
                        )
                    )
            else:
                replays[tool_name] = replay_tool(
                    tool_factory, batch, repeats, engine, fused
                )

    if degradations and getattr(tracer, "enabled", False):
        # Self-healing fired: preserve the last-moments ring so the
        # span timeline shows what led up to each fallback.
        from repro.obs.distributed import flight_dump

        flight = getattr(tracer, "flight", None)
        if flight is not None:
            for deg in degradations:
                flight.note("degradation", **deg.as_dict())
        flight_dump(
            tracer,
            f"replay degraded: {len(degradations)} action(s)",
            workload=name,
        )

    result = WorkloadMeasurement(
        name,
        native_time,
        native_cells,
        record_time=record_time,
        trace_events=events,
        trace_bytes=len(payload) if payload is not None else 0,
        degradations=degradations,
        engine=engine,
        superops_fused=superops,
        partitions=(
            len(partition_plan.partitions)
            if partition_plan is not None
            else None
        ),
        partition_reason=(
            partition_plan.reason if partition_plan is not None else None
        ),
    )
    for tool_name in tools:
        if tool_name not in replays:
            continue  # excluded after repeated failures (see degradations)
        replay_time, space = replays[tool_name]
        wall_time = record_time + replay_time
        result.tools[tool_name] = ToolMeasurement(
            tool=tool_name,
            wall_time=wall_time,
            slowdown=wall_time / native_time if native_time > 0 else math.inf,
            space_cells=space,
            space_overhead=(native_cells + space) / native_cells,
            events=events,
            replay_time=replay_time,
        )
    if metrics is not None:
        publish_measurement(result, metrics)
    return result


def publish_measurement(measurement: WorkloadMeasurement, registry) -> None:
    """Publish one workload's measurement into a metrics registry.

    Times become microsecond gauges labelled by workload (and tool, for
    replays); the supervision record folds into ``runner.retries`` /
    ``runner.timeouts`` / ``runner.fallbacks`` / ``runner.exclusions``
    counters plus a per-(stage, action) breakdown — the same
    :class:`Degradation` data the JSON report carries, queryable as
    metrics.
    """
    if registry is None or not registry.enabled:
        return
    w = {"workload": measurement.workload}
    # sub-microsecond replays (a no-op tool on a tiny trace) round up to
    # 1, not down to 0 — a measured duration gauge reading 0 is a lie
    us = lambda seconds: max(1, int(seconds * 1e6)) if seconds > 0 else 0  # noqa: E731
    registry.gauge("runner.native_us", w).set(us(measurement.native_time))
    registry.gauge("runner.record_us", w).set(us(measurement.record_time))
    registry.gauge("runner.trace_events", w).set(measurement.trace_events)
    registry.gauge("kernel.superops_fused", w).set(measurement.superops_fused)
    if measurement.trace_bytes and measurement.trace_events:
        registry.gauge("trace.bytes_per_event", w).set(
            round(measurement.trace_bytes / measurement.trace_events, 3)
        )
    from repro.tools.pool import active_segments, pool_stats

    pstats = pool_stats()
    registry.gauge("pool.workers").set(pstats["workers"])
    registry.gauge("pool.tasks").set(pstats["tasks"])
    registry.gauge("pool.tasks_reused").set(pstats["tasks_reused"])
    registry.gauge("shm.segments_active").set(active_segments())
    if measurement.partitions is not None:
        registry.gauge("runner.partitions", w).set(measurement.partitions)
    for tool_name, row in measurement.tools.items():
        labels = {"workload": measurement.workload, "tool": tool_name}
        registry.gauge("runner.replay_us", labels).set(us(row.replay_time))
        registry.gauge("runner.space_cells", labels).set(row.space_cells)
        registry.histogram("runner.replay_latency_us").observe(
            us(row.replay_time)
        )
    for degradation in measurement.degradations:
        if degradation.action == "retried":
            registry.counter("runner.retries").inc()
        elif degradation.action == "serial-fallback":
            registry.counter("runner.fallbacks").inc()
        elif degradation.action == "excluded":
            registry.counter("runner.exclusions").inc()
        if "timeout" in degradation.reason:
            registry.counter("runner.timeouts").inc()
        registry.counter(
            "runner.degradations",
            {"stage": degradation.stage, "action": degradation.action},
        ).inc()


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of the positive entries of ``values``.

    An empty input raises :class:`ValueError` (the caller has nothing
    to average — historically this surfaced later as an opaque
    ``ZeroDivisionError``); a non-empty input with no positive entries
    keeps the legacy 0.0 so degenerate-but-present rows don't abort a
    sweep.
    """
    if not values:
        raise ValueError("geometric_mean() of an empty sequence")
    positive = [v for v in values if v > 0]
    if not positive:
        return 0.0
    return math.exp(sum(math.log(v) for v in positive) / len(positive))


def suite_summary(
    measurements: Sequence[WorkloadMeasurement],
) -> Dict[str, Dict[str, float]]:
    """Geometric-mean slowdown and space overhead per tool over a suite —
    one Table 1 block.

    Raises a :class:`ValueError` naming the excluded tools when the
    supervisor dropped *every* tool on *every* workload: there is no
    row left to summarise, and silently returning ``{}`` used to let
    the caller trip over ``ZeroDivisionError``/``StatisticsError``
    far from the cause.  An empty ``measurements`` list still returns
    ``{}`` (nothing was attempted, nothing to report).
    """
    if not measurements:
        return {}
    tool_names: List[str] = []
    for m in measurements:
        for tool_name in m.tools:
            if tool_name not in tool_names:
                tool_names.append(tool_name)
    if not tool_names:
        excluded = sorted({t for m in measurements for t in m.excluded_tools})
        raise ValueError(
            "every tool was excluded by supervision; nothing to summarise "
            f"(excluded: {', '.join(excluded) if excluded else 'unknown'} — "
            "see the measurements' degradations for reasons)"
        )
    summary: Dict[str, Dict[str, float]] = {}
    for tool_name in tool_names:
        # a tool excluded on some workload contributes only where it ran
        rows = [m.tools[tool_name] for m in measurements if tool_name in m.tools]
        summary[tool_name] = {
            "slowdown": geometric_mean([r.slowdown for r in rows]),
            "space_overhead": geometric_mean([r.space_overhead for r in rows]),
        }
    return summary

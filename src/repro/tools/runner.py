"""Measurement harness: record the trace once, replay it under each tool.

Regenerates the Table 1 / Figure 16 methodology:

* **native execution** — the machine runs uninstrumented
  (``instrument=False``): primitive ops skip event construction, the
  closest analogue of running the benchmark outside Valgrind;
* **recorded execution** — the machine runs instrumented *once* with a
  batched opcode encoder attached (:meth:`Machine.set_batch_sink`),
  producing the compact struct-of-arrays trace of
  :class:`repro.core.events.EventBatch`.  The recording time is the
  shared instrumentation-infrastructure cost every tool pays — exactly
  what nulgrind isolates in the paper;
* **tool replay** — each tool's :meth:`consume_batch` replays the same
  recorded batch, so per-tool analysis work is measured over *identical*
  event streams instead of re-executing the workload ``tools x repeats``
  times.  Tool time = record time + best replay time;
* **slowdown** — tool time over native time (geometric means across a
  suite, as in Table 1);
* **space overhead** — (workload cells + tool shadow cells) over
  workload cells.

Because the trace is an artifact, replays are embarrassingly parallel:
``measure_workload(..., parallel=N)`` ships the serialised batch
(``EventBatch.to_bytes``) to ``N`` worker processes and replays the
tools concurrently, falling back to serial replay if the tool factories
cannot cross a process boundary (e.g. closures).

Wall-clock timing of small workloads is noisy, so native runs and
replays take the best of ``repeats`` attempts; every replay builds a
fresh tool so state never leaks between runs.
"""

from __future__ import annotations

import math
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.events import EventBatch
from repro.tools.aprof import AprofTool
from repro.tools.aprof_drms import AprofDrmsTool
from repro.tools.base import AnalysisTool
from repro.tools.callgrind import Callgrind
from repro.tools.helgrind import Helgrind
from repro.tools.memcheck import Memcheck
from repro.tools.nulgrind import Nulgrind
from repro.vm import Machine

__all__ = [
    "DEFAULT_TOOLS",
    "ToolMeasurement",
    "WorkloadMeasurement",
    "record_trace",
    "replay_tool",
    "measure_workload",
    "geometric_mean",
    "suite_summary",
]

#: factories for the six tools of Table 1, in the paper's column order
DEFAULT_TOOLS: Dict[str, Callable[[], AnalysisTool]] = {
    "nulgrind": Nulgrind,
    "memcheck": Memcheck,
    "callgrind": Callgrind,
    "helgrind": Helgrind,
    "aprof": AprofTool,
    "aprof-drms": AprofDrmsTool,
}


@dataclass
class ToolMeasurement:
    """One tool's numbers on one workload."""

    tool: str
    wall_time: float
    slowdown: float
    space_cells: int
    space_overhead: float
    events: int
    #: this tool's own replay time (``wall_time`` minus the shared
    #: record time)
    replay_time: float = 0.0


@dataclass
class WorkloadMeasurement:
    """All measurements for one workload."""

    workload: str
    native_time: float
    native_cells: int
    tools: Dict[str, ToolMeasurement] = field(default_factory=dict)
    #: wall time of the single instrumented recording run (the shared
    #: infrastructure cost included in every tool's ``wall_time``)
    record_time: float = 0.0
    #: events in the recorded trace
    trace_events: int = 0


def record_trace(build: Callable[[], Machine]) -> Tuple[float, EventBatch, Machine]:
    """Run the workload instrumented once, recording the opcode trace.

    Returns ``(wall_time, batch, machine)``; the wall time covers the
    instrumented execution plus encoding — the infrastructure cost that
    every tool-attached run would pay.
    """
    machine = build()
    machine.instrument = True
    machine.set_batch_sink()  # record; no consumer
    start = time.perf_counter()
    machine.run()
    elapsed = time.perf_counter() - start
    batch = machine.encoded_trace
    assert batch is not None
    return elapsed, batch, machine


def replay_tool(
    factory: Callable[[], AnalysisTool],
    batch: EventBatch,
    repeats: int = 3,
) -> Tuple[float, int]:
    """Replay ``batch`` under ``repeats`` fresh tools; returns the best
    wall time and the matching tool's shadow-state cells."""
    best_time = math.inf
    space = 0
    for _ in range(repeats):
        tool = factory()
        start = time.perf_counter()
        tool.consume_batch(batch)
        elapsed = time.perf_counter() - start
        if elapsed < best_time:
            best_time = elapsed
            space = tool.space_cells()
    return best_time, space


def _replay_worker(
    factory: Callable[[], AnalysisTool], payload: bytes, repeats: int
) -> Tuple[float, int]:
    """Process-pool entry point: decode the shipped trace and replay."""
    return replay_tool(factory, EventBatch.from_bytes(payload), repeats)


def _replay_all_parallel(
    tools: Dict[str, Callable[[], AnalysisTool]],
    batch: EventBatch,
    repeats: int,
    workers: int,
) -> Dict[str, Tuple[float, int]]:
    """Replay every tool in ``workers`` processes; raises if the factories
    or the pool cannot be used (caller falls back to serial)."""
    payload = batch.to_bytes()
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = {
            name: pool.submit(_replay_worker, factory, payload, repeats)
            for name, factory in tools.items()
        }
        return {name: future.result() for name, future in futures.items()}


def measure_workload(
    name: str,
    build: Callable[[], Machine],
    tools: Optional[Dict[str, Callable[[], AnalysisTool]]] = None,
    repeats: int = 3,
    parallel: Optional[int] = None,
) -> WorkloadMeasurement:
    """Measure native and per-tool execution of one workload factory.

    ``parallel=N`` replays the recorded trace under the tools in ``N``
    worker processes instead of serially; results are identical because
    every replay consumes the same recorded batch.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if parallel is not None and parallel < 1:
        raise ValueError("parallel must be >= 1")
    if tools is None:
        tools = DEFAULT_TOOLS

    native_time = math.inf
    native_cells = 0
    for _ in range(repeats):
        machine = build()
        machine.instrument = False
        start = time.perf_counter()
        machine.run()
        elapsed = time.perf_counter() - start
        native_time = min(native_time, elapsed)
        native_cells = max(native_cells, machine.space_cells())
    native_cells = max(native_cells, 1)

    record_time, batch, _machine = record_trace(build)
    events = len(batch)

    replays: Dict[str, Tuple[float, int]] = {}
    if parallel is not None and parallel > 1:
        try:
            replays = _replay_all_parallel(tools, batch, repeats, parallel)
        except Exception:
            replays = {}  # unpicklable factory or no pool: replay serially
    for tool_name, tool_factory in tools.items():
        if tool_name not in replays:
            replays[tool_name] = replay_tool(tool_factory, batch, repeats)

    result = WorkloadMeasurement(
        name,
        native_time,
        native_cells,
        record_time=record_time,
        trace_events=events,
    )
    for tool_name in tools:
        replay_time, space = replays[tool_name]
        wall_time = record_time + replay_time
        result.tools[tool_name] = ToolMeasurement(
            tool=tool_name,
            wall_time=wall_time,
            slowdown=wall_time / native_time if native_time > 0 else math.inf,
            space_cells=space,
            space_overhead=(native_cells + space) / native_cells,
            events=events,
            replay_time=replay_time,
        )
    return result


def geometric_mean(values: Sequence[float]) -> float:
    positive = [v for v in values if v > 0]
    if not positive:
        return 0.0
    return math.exp(sum(math.log(v) for v in positive) / len(positive))


def suite_summary(
    measurements: Sequence[WorkloadMeasurement],
) -> Dict[str, Dict[str, float]]:
    """Geometric-mean slowdown and space overhead per tool over a suite —
    one Table 1 block."""
    if not measurements:
        return {}
    tool_names: List[str] = list(measurements[0].tools)
    summary: Dict[str, Dict[str, float]] = {}
    for tool_name in tool_names:
        slowdowns = [m.tools[tool_name].slowdown for m in measurements]
        overheads = [m.tools[tool_name].space_overhead for m in measurements]
        summary[tool_name] = {
            "slowdown": geometric_mean(slowdowns),
            "space_overhead": geometric_mean(overheads),
        }
    return summary

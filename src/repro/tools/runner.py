"""Measurement harness: run workloads natively and under each tool.

Regenerates the Table 1 / Figure 16 methodology:

* **native execution** — the machine runs uninstrumented
  (``instrument=False``): primitive ops skip event construction, the
  closest analogue of running the benchmark outside Valgrind;
* **tool execution** — the machine runs instrumented with the tool
  attached as the event sink, so the measured time includes both the
  instrumentation infrastructure (event construction/dispatch — what
  nulgrind isolates) and the tool's per-event analysis work;
* **slowdown** — tool wall-clock over native wall-clock (geometric means
  across a suite, as in Table 1);
* **space overhead** — (workload cells + tool shadow cells) over
  workload cells.

Wall-clock timing of small workloads is noisy, so each measurement takes
the best of ``repeats`` runs; every run rebuilds the machine from its
factory so state never leaks between runs.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.tools.aprof import AprofTool
from repro.tools.aprof_drms import AprofDrmsTool
from repro.tools.base import AnalysisTool
from repro.tools.callgrind import Callgrind
from repro.tools.helgrind import Helgrind
from repro.tools.memcheck import Memcheck
from repro.tools.nulgrind import Nulgrind
from repro.vm import Machine

__all__ = [
    "DEFAULT_TOOLS",
    "ToolMeasurement",
    "WorkloadMeasurement",
    "measure_workload",
    "geometric_mean",
    "suite_summary",
]

#: factories for the six tools of Table 1, in the paper's column order
DEFAULT_TOOLS: Dict[str, Callable[[], AnalysisTool]] = {
    "nulgrind": Nulgrind,
    "memcheck": Memcheck,
    "callgrind": Callgrind,
    "helgrind": Helgrind,
    "aprof": AprofTool,
    "aprof-drms": AprofDrmsTool,
}


@dataclass
class ToolMeasurement:
    """One tool's numbers on one workload."""

    tool: str
    wall_time: float
    slowdown: float
    space_cells: int
    space_overhead: float
    events: int


@dataclass
class WorkloadMeasurement:
    """All measurements for one workload."""

    workload: str
    native_time: float
    native_cells: int
    tools: Dict[str, ToolMeasurement] = field(default_factory=dict)


def _time_run(build: Callable[[], Machine], **kwargs) -> tuple:
    machine = build()
    machine.instrument = kwargs.get("instrument", True)
    sink = kwargs.get("sink")
    if sink is not None:
        machine._sink = sink
    start = time.perf_counter()
    machine.run()
    elapsed = time.perf_counter() - start
    return elapsed, machine


def measure_workload(
    name: str,
    build: Callable[[], Machine],
    tools: Optional[Dict[str, Callable[[], AnalysisTool]]] = None,
    repeats: int = 3,
) -> WorkloadMeasurement:
    """Measure native and per-tool execution of one workload factory."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if tools is None:
        tools = DEFAULT_TOOLS

    native_time = math.inf
    native_cells = 0
    for _ in range(repeats):
        elapsed, machine = _time_run(build, instrument=False)
        native_time = min(native_time, elapsed)
        native_cells = max(native_cells, machine.space_cells())
    native_cells = max(native_cells, 1)

    result = WorkloadMeasurement(name, native_time, native_cells)
    for tool_name, tool_factory in tools.items():
        best_time = math.inf
        space = 0
        events = 0
        for _ in range(repeats):
            tool = tool_factory()
            counter = [0]

            def sink(event, _tool=tool, _counter=counter):
                _counter[0] += 1
                _tool.consume(event)

            elapsed, _machine = _time_run(build, instrument=True, sink=sink)
            if elapsed < best_time:
                best_time = elapsed
                space = tool.space_cells()
                events = counter[0]
        result.tools[tool_name] = ToolMeasurement(
            tool=tool_name,
            wall_time=best_time,
            slowdown=best_time / native_time if native_time > 0 else math.inf,
            space_cells=space,
            space_overhead=(native_cells + space) / native_cells,
            events=events,
        )
    return result


def geometric_mean(values: Sequence[float]) -> float:
    positive = [v for v in values if v > 0]
    if not positive:
        return 0.0
    return math.exp(sum(math.log(v) for v in positive) / len(positive))


def suite_summary(
    measurements: Sequence[WorkloadMeasurement],
) -> Dict[str, Dict[str, float]]:
    """Geometric-mean slowdown and space overhead per tool over a suite —
    one Table 1 block."""
    if not measurements:
        return {}
    tool_names: List[str] = list(measurements[0].tools)
    summary: Dict[str, Dict[str, float]] = {}
    for tool_name in tool_names:
        slowdowns = [m.tools[tool_name].slowdown for m in measurements]
        overheads = [m.tools[tool_name].space_overhead for m in measurements]
        summary[tool_name] = {
            "slowdown": geometric_mean(slowdowns),
            "space_overhead": geometric_mean(overheads),
        }
    return summary

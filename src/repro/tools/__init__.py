"""The comparison tool suite: working re-implementations of the Valgrind
tools the paper benchmarks against, all consuming the same VM event
stream, plus the measurement harness behind Table 1 and Figure 16."""

from repro.tools.aprof import AprofTool
from repro.tools.aprof_drms import AprofDrmsTool
from repro.tools.base import AnalysisTool
from repro.tools.callgrind import Callgrind
from repro.tools.helgrind import Helgrind, VectorClock
from repro.tools.memcheck import Memcheck
from repro.tools.nulgrind import Nulgrind
from repro.tools.runner import (
    DEFAULT_ENGINE,
    DEFAULT_TOOLS,
    ENGINES,
    Degradation,
    ToolMeasurement,
    WorkloadMeasurement,
    geometric_mean,
    measure_workload,
    publish_measurement,
    record_trace,
    replay_tool,
    replay_tool_streaming,
    suite_summary,
)

__all__ = [
    "AnalysisTool",
    "Nulgrind",
    "Memcheck",
    "Callgrind",
    "Helgrind",
    "VectorClock",
    "AprofTool",
    "AprofDrmsTool",
    "DEFAULT_ENGINE",
    "DEFAULT_TOOLS",
    "ENGINES",
    "Degradation",
    "ToolMeasurement",
    "WorkloadMeasurement",
    "record_trace",
    "replay_tool",
    "replay_tool_streaming",
    "measure_workload",
    "publish_measurement",
    "geometric_mean",
    "suite_summary",
]

"""nulgrind: the do-nothing tool.

Valgrind's ``none`` tool collects no information and exists to measure
the cost of the instrumentation infrastructure itself; the paper uses it
as the slowdown floor (23.6x / 12.2x over native on the two suites).
Ours likewise does nothing per event — the measured overhead is event
construction and dispatch, the infrastructure cost every tool pays.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.core.events import Event, EventBatch
from repro.tools.base import AnalysisTool

__all__ = ["Nulgrind"]


class Nulgrind(AnalysisTool):
    name = "nulgrind"

    def __init__(self) -> None:
        self.events = 0

    def consume(self, event: Event) -> None:
        self.events += 1

    def consume_batch(self, batch: EventBatch) -> None:
        self.events += len(batch)

    def finish(self) -> Dict[str, Any]:
        return {"events": self.events}

"""aprof: the rms-based input-sensitive profiler, as an analysis tool.

This is the baseline the paper extends: the PLDI'12 profiler computing
the read memory size of every routine activation.  It wraps
:class:`repro.core.rms.RmsProfiler` — thread-local shadow memories and
shadow stacks only, no global write-timestamp map, which is why its
space footprint undercuts aprof-drms in Table 1.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.core.events import Event, EventBatch
from repro.core.rms import RmsProfiler
from repro.tools.base import AnalysisTool

__all__ = ["AprofTool"]


class AprofTool(AnalysisTool):
    name = "aprof"
    supports_superops = True
    partition_kind = "rms"

    def __init__(self) -> None:
        self.engine = RmsProfiler(keep_activations=False)

    def consume(self, event: Event) -> None:
        self.engine.consume(event)

    def consume_batch(self, batch: EventBatch) -> None:
        self.engine.consume_batch(batch)

    def consume_columnar(self, batch: EventBatch) -> None:
        self.engine.consume_columnar(batch)

    def finish(self) -> Dict[str, Any]:
        profiles = self.engine.profiles
        return {
            "routines": len(profiles.by_routine()),
            "profiles": profiles,
        }

    def space_cells(self) -> int:
        return self.engine.space_cells()

"""aprof-drms: the paper's tool, packaged for the comparison harness.

Wraps :class:`repro.core.timestamping.DrmsProfiler` (the full Figure 8/9
algorithm).  Relative to plain aprof it additionally maintains the
global write-timestamp shadow memory and the write-source map, so it
pays roughly the paper's reported ~29% extra time over aprof and a
larger space footprint — both visible in the Table 1 harness.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.core.events import Event, EventBatch
from repro.core.policy import FULL_POLICY, InputPolicy
from repro.core.timestamping import DrmsProfiler
from repro.tools.base import AnalysisTool

__all__ = ["AprofDrmsTool"]


class AprofDrmsTool(AnalysisTool):
    name = "aprof-drms"
    supports_superops = True
    partition_kind = "drms"

    def __init__(
        self,
        policy: InputPolicy = FULL_POLICY,
        counter_limit: Optional[int] = None,
    ) -> None:
        self.engine = DrmsProfiler(
            policy=policy, counter_limit=counter_limit, keep_activations=False
        )

    def consume(self, event: Event) -> None:
        self.engine.consume(event)

    def consume_batch(self, batch: EventBatch) -> None:
        self.engine.consume_batch(batch)

    def consume_columnar(self, batch: EventBatch) -> None:
        self.engine.consume_columnar(batch)

    def finish(self) -> Dict[str, Any]:
        profiles = self.engine.profiles
        return {
            "routines": len(profiles.by_routine()),
            "profiles": profiles,
            "read_counters": self.engine.read_counters,
        }

    def space_cells(self) -> int:
        return self.engine.space_cells()

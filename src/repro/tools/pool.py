"""Zero-copy trace residency and persistent warm worker pools.

Before this module, every parallel stage paid two fixed costs per use:
a fresh ``ProcessPoolExecutor`` (fork + import + teardown) per
measure/sweep-cell/retry-round, and a pickled copy of the trace payload
per submitted task.  Both costs scale with ``trace x workers x cells``
and are what made 2-worker partitioned replay *slower* than serial.

Two pieces remove them:

* :class:`SharedTrace` places the serialised trace in a POSIX
  shared-memory segment **once**; workers attach by name and decode
  their partition's byte range through a zero-copy ``memoryview``.
  Cleanup is belt-and-braces: explicit ``unlink()`` on every exit path
  of the supervisor, an ``atexit`` hook for anything still registered,
  and creator-pid-stamped segment names (``repro-shm-<pid>-<seq>``) so
  any process can reap segments whose creator died without unlinking
  (SIGKILL, power loss) — :func:`reap_stale_segments` runs on every
  ``SharedTrace`` creation, so one surviving run cleans up after any
  number of killed ones.

* :class:`WorkerPool` keeps one supervised ``ProcessPoolExecutor``
  alive for the whole process: partitions, tools, sweep cells and
  retry rounds all reuse the same warm workers instead of respawning.
  The pool only ever grows; a broken executor (a worker died) or an
  explicit :meth:`WorkerPool.terminate` (a worker wedged) respawns it
  lazily on the next :meth:`WorkerPool.ensure`.  ``tasks_reused``
  counts submissions that rode an already-warm pool — the figure the
  sweep report and ``repro stats`` surface.

Worker processes keep an **attach cache** keyed by segment name
(:func:`attached_view`): the same trace is mapped once per worker, not
once per task, and the cache is LRU-capped so long-lived workers do
not accumulate mappings.  Workers are forked from the segment creator
and share its ``resource_tracker`` process, so their attach-time
REGISTERs dedupe against the creator's and the creator's unlink
balances the books — no spurious tracker unlinks or leak warnings.

Everything degrades: platforms without working shared memory fall back
to the pickled-subrange path (callers probe :func:`shm_available`),
and a forked child inheriting this module's globals can neither unlink
the parent's segments nor reuse its executor — both are guarded by
creator-pid checks.
"""

from __future__ import annotations

import atexit
import itertools
import os
import threading
from collections import OrderedDict
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional

try:  # pragma: no cover - present on every supported platform
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover - exotic build without _posixshmem
    shared_memory = None  # type: ignore[assignment]

__all__ = [
    "SharedTrace",
    "WorkerPool",
    "active_segments",
    "attached_view",
    "detach_all",
    "get_pool",
    "pool_stats",
    "reap_stale_segments",
    "shm_available",
    "shutdown_pool",
]

#: segment name prefix; the embedded creator pid is what makes stale
#: segments reapable after a SIGKILL (``repro-shm-<pid>-<seq>``)
_SHM_PREFIX = "repro-shm"

#: where POSIX shared memory surfaces as files on Linux (reaping scans
#: it directly; attach/create never need it)
_SHM_DIR = "/dev/shm"

_seq = itertools.count()
_lock = threading.RLock()

#: creator-side registry: name -> SharedTrace, for the atexit sweep
_LIVE: Dict[str, "SharedTrace"] = {}

_SHM_OK: Optional[bool] = None


def shm_available() -> bool:
    """Probe (once) whether shared-memory segments actually work here."""
    global _SHM_OK
    if _SHM_OK is None:
        if shared_memory is None:
            _SHM_OK = False
        else:
            try:
                probe = shared_memory.SharedMemory(create=True, size=16)
                probe.close()
                probe.unlink()
                _SHM_OK = True
            except Exception:
                _SHM_OK = False
    return _SHM_OK


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, not ours
        return True
    except OSError:  # pragma: no cover - conservative: assume alive
        return True
    return True


def reap_stale_segments() -> List[str]:
    """Unlink ``repro-shm-*`` segments whose creator process is dead.

    The crash-cleanup backstop: ``atexit`` cannot run under SIGKILL, so
    a killed run leaves its segment behind — but the name carries the
    creator pid, and the next run (any run, any process) reaps it here.
    Returns the names reaped; never raises.
    """
    reaped: List[str] = []
    try:
        entries = os.listdir(_SHM_DIR)
    except OSError:
        return reaped
    own = os.getpid()
    for entry in entries:
        if not entry.startswith(_SHM_PREFIX + "-"):
            continue
        parts = entry.split("-")
        if len(parts) < 4 or not parts[2].isdigit():
            continue
        pid = int(parts[2])
        if pid == own or _pid_alive(pid):
            continue
        try:
            os.unlink(os.path.join(_SHM_DIR, entry))
            reaped.append(entry)
        except OSError:  # pragma: no cover - raced with another reaper
            pass
    return reaped


class SharedTrace:
    """One trace payload resident in a shared-memory segment.

    Created by the supervising parent; workers attach by ``name`` via
    :func:`attached_view` and read ``size`` bytes zero-copy.  The
    segment outlives worker crashes (the parent owns it) and is
    unlinked exactly once — by :meth:`unlink`, the ``atexit`` sweep, or
    a later run's :func:`reap_stale_segments` if this process was
    SIGKILLed first.  Usable as a context manager.
    """

    def __init__(self, payload) -> None:
        if shared_memory is None:
            raise RuntimeError("shared memory is not available")
        size = len(payload)
        if size == 0:
            raise ValueError("cannot share an empty payload")
        reap_stale_segments()
        shm = None
        for _ in range(8):  # name collisions only via pid reuse
            name = f"{_SHM_PREFIX}-{os.getpid()}-{next(_seq)}"
            try:
                shm = shared_memory.SharedMemory(
                    name=name, create=True, size=size
                )
                break
            except FileExistsError:  # pragma: no cover - pid-reuse race
                continue
        if shm is None:  # pragma: no cover - 8 straight collisions
            raise RuntimeError("could not allocate a shared trace segment")
        shm.buf[:size] = payload
        self._shm = shm
        self._owner = os.getpid()
        self.name = shm.name
        self.size = size
        with _lock:
            _LIVE[self.name] = self

    def view(self) -> memoryview:
        """Creator-side zero-copy view (workers use attached_view)."""
        if self._shm is None:
            raise ValueError("segment already unlinked")
        return self._shm.buf[: self.size]

    def unlink(self) -> None:
        """Close and remove the segment; idempotent, never raises.

        A forked child inheriting this object is not the owner and
        must not unlink the parent's segment out from under it.
        """
        if self._shm is None or os.getpid() != self._owner:
            return
        shm, self._shm = self._shm, None
        with _lock:
            _LIVE.pop(self.name, None)
        try:
            shm.close()
        except Exception:  # pragma: no cover - exported views linger
            pass
        try:
            shm.unlink()
        except Exception:  # pragma: no cover - already reaped
            pass

    def __enter__(self) -> "SharedTrace":
        return self

    def __exit__(self, *exc) -> None:
        self.unlink()


def active_segments() -> int:
    """Segments this process created and has not yet unlinked — the
    ``shm.segments_active`` gauge (0 after every clean replay)."""
    own = os.getpid()
    with _lock:
        return sum(1 for t in _LIVE.values() if t._owner == own)


# -- worker-side attach cache -------------------------------------------------

#: name -> SharedMemory, LRU order; per-process (each pool worker gets
#: its own after fork)
_ATTACHED: "OrderedDict[str, object]" = OrderedDict()
_ATTACH_CAP = 4
_attach_hits = 0
_attach_misses = 0


def attached_view(name: str, size: int) -> memoryview:
    """Attach to segment ``name`` (cached) and return ``size`` bytes.

    The cache keys by segment name, so a worker replaying many
    partitions — or many tasks across sweep cells — of the same trace
    maps it exactly once.  Capped LRU: attaching an evicted segment
    again is just another ``shm_open``.
    """
    global _attach_hits, _attach_misses
    if shared_memory is None:
        raise RuntimeError("shared memory is not available")
    with _lock:
        shm = _ATTACHED.get(name)
        if shm is not None:
            _ATTACHED.move_to_end(name)
            _attach_hits += 1
            return shm.buf[:size]
        _attach_misses += 1
    # NB: attaching registers with the resource tracker (unconditional
    # before Python 3.13), but pool workers are forked from the segment
    # creator and share its tracker process, whose per-name cache is a
    # set — the duplicate REGISTER dedupes and the creator's unlink
    # balances it.  Unregistering here instead would strip the
    # creator's entry and make its unlink traceback in the tracker.
    shm = shared_memory.SharedMemory(name=name)
    with _lock:
        _ATTACHED[name] = shm
        while len(_ATTACHED) > _ATTACH_CAP:
            _old, old_shm = _ATTACHED.popitem(last=False)
            try:
                old_shm.close()
            except BufferError:  # pragma: no cover - view still exported
                pass
    return shm.buf[:size]


def attach_stats() -> Dict[str, int]:
    """Hit/miss counters of this process's attach cache."""
    with _lock:
        return {
            "attached": len(_ATTACHED),
            "hits": _attach_hits,
            "misses": _attach_misses,
        }


def detach_all() -> None:
    """Drop every cached attachment (tests; also safe mid-run)."""
    with _lock:
        items = list(_ATTACHED.items())
        _ATTACHED.clear()
    for _name, shm in items:
        try:
            shm.close()
        except BufferError:  # pragma: no cover
            pass


# -- persistent warm worker pool ----------------------------------------------


class WorkerPool:
    """A supervised ``ProcessPoolExecutor`` that survives between uses.

    Callers bracket each round of submissions with
    :meth:`ensure` (grow/heal to at least N workers) and leave the pool
    running afterwards; only a wedged worker forces :meth:`terminate`.
    The executor is replaced — never resized in place — when it must
    grow, is broken, or was terminated; ``spawns`` counts those
    replacements and ``tasks_reused`` the submissions that rode an
    already-used executor (the warm-pool win).
    """

    def __init__(self) -> None:
        self._executor: Optional[ProcessPoolExecutor] = None
        self._workers = 0
        self._used = False
        self._pid = os.getpid()
        self.spawns = 0
        self.respawns_broken = 0
        self.tasks = 0
        self.tasks_reused = 0

    @property
    def workers(self) -> int:
        return self._workers

    def _broken(self) -> bool:
        return bool(getattr(self._executor, "_broken", False))

    def _respawn(self, workers: int) -> None:
        old = self._executor
        if old is not None:
            if self._broken():
                self.respawns_broken += 1
            old.shutdown(wait=False, cancel_futures=True)
        self._executor = ProcessPoolExecutor(max_workers=workers)
        self._workers = workers
        self._used = False
        self.spawns += 1

    def ensure(self, workers: int) -> "WorkerPool":
        """Make the pool usable with at least ``workers`` workers.

        Grows (never shrinks — idle workers are the warmth), and heals
        a broken or terminated executor.  Raises whatever executor
        construction raises (no fork available) — callers already
        treat that as pool-unavailable and fall back to serial.
        """
        if workers < 1:
            raise ValueError("workers must be >= 1")
        with _lock:
            if (
                self._executor is None
                or self._broken()
                or self._workers < workers
            ):
                self._respawn(max(workers, self._workers))
        return self

    def submit(self, fn, *args, **kwargs) -> Future:
        """Submit one task; heals a just-broken executor once."""
        with _lock:
            if self._executor is None:
                raise RuntimeError("WorkerPool.ensure() before submit()")
            warm = self._used
            try:
                future = self._executor.submit(fn, *args, **kwargs)
            except (BrokenProcessPool, RuntimeError):
                self._respawn(self._workers)
                warm = False
                future = self._executor.submit(fn, *args, **kwargs)
            self._used = True
            self.tasks += 1
            if warm:
                self.tasks_reused += 1
            return future

    def terminate(self) -> None:
        """Kill the workers outright (a task wedged past its deadline);
        the next :meth:`ensure` respawns.  Never hangs."""
        with _lock:
            executor, self._executor = self._executor, None
            self._used = False  # _workers survives so regrow keeps size
        if executor is None:
            return
        processes = list(getattr(executor, "_processes", {}).values())
        executor.shutdown(wait=False, cancel_futures=True)
        for process in processes:
            if process.is_alive():
                process.terminate()
        for process in processes:
            process.join(timeout=5)

    def shutdown(self) -> None:
        """Graceful teardown (atexit, tests)."""
        with _lock:
            executor, self._executor = self._executor, None
            self._used = False
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    def stats(self) -> Dict[str, int]:
        return {
            "workers": self._workers,
            "spawns": self.spawns,
            "respawns_broken": self.respawns_broken,
            "tasks": self.tasks,
            "tasks_reused": self.tasks_reused,
        }


_GLOBAL_POOL: Optional[WorkerPool] = None


def get_pool() -> WorkerPool:
    """The process-wide warm pool.

    One pool per process is what hoists pool lifetime to measure/sweep/
    service-job scope with no plumbing: every ``replay_partitioned``,
    ``_replay_all_supervised`` and sweep-cell round in this process
    shares it.  A forked child gets a fresh pool (executors do not
    survive fork), so nested parallelism stays safe.
    """
    global _GLOBAL_POOL
    with _lock:
        if _GLOBAL_POOL is None or _GLOBAL_POOL._pid != os.getpid():
            _GLOBAL_POOL = WorkerPool()
        return _GLOBAL_POOL


def pool_stats() -> Dict[str, int]:
    """Counters of the process-wide pool (zeros before first use)."""
    with _lock:
        if _GLOBAL_POOL is None or _GLOBAL_POOL._pid != os.getpid():
            return {
                "workers": 0,
                "spawns": 0,
                "respawns_broken": 0,
                "tasks": 0,
                "tasks_reused": 0,
            }
        return _GLOBAL_POOL.stats()


def shutdown_pool(terminate: bool = False) -> None:
    """Tear down the process-wide pool (tests, worker loops between
    jobs).  The next :func:`get_pool` starts cold."""
    global _GLOBAL_POOL
    with _lock:
        pool, _GLOBAL_POOL = _GLOBAL_POOL, None
    if pool is not None and pool._pid == os.getpid():
        if terminate:
            pool.terminate()
        else:
            pool.shutdown()


@atexit.register
def _cleanup_at_exit() -> None:  # pragma: no cover - exercised via subprocess
    """Last-chance cleanup: unlink owned segments, stop the pool.

    Runs in every process that imported this module — the owner-pid
    guards inside ``unlink()``/``shutdown_pool()`` make it a no-op in
    forked children, so a pool worker exiting cannot unlink a segment
    its parent still serves to siblings.
    """
    with _lock:
        traces = list(_LIVE.values())
    for trace in traces:
        trace.unlink()
    shutdown_pool()
    detach_all()

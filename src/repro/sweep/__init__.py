"""Sharded sweep engine: record-once, cache, replay, merge.

See :mod:`repro.sweep.store` for the content-addressed trace cache and
:mod:`repro.sweep.engine` for the supervised matrix runner and the
shard-merge aggregation into per-routine cost models.
"""

from repro.sweep.engine import (
    CellTask,
    SweepCell,
    SweepConfig,
    SweepResult,
    merge_store_profiles,
    run_cell,
    run_sweep,
)
from repro.sweep.store import (
    SHARD_VERSION,
    StoreAudit,
    TraceKey,
    TraceStore,
)

__all__ = [
    "CellTask",
    "SHARD_VERSION",
    "StoreAudit",
    "SweepCell",
    "SweepConfig",
    "SweepResult",
    "TraceKey",
    "TraceStore",
    "merge_store_profiles",
    "run_cell",
    "run_sweep",
]

"""Sharded sweep engine: record-once, cache, replay, merge.

See :mod:`repro.sweep.store` for the content-addressed trace cache and
:mod:`repro.sweep.engine` for the supervised matrix runner and the
shard-merge aggregation into per-routine cost models.
"""

from repro.sweep.engine import SweepCell, SweepConfig, SweepResult, run_sweep
from repro.sweep.store import SHARD_VERSION, TraceKey, TraceStore

__all__ = [
    "SHARD_VERSION",
    "SweepCell",
    "SweepConfig",
    "SweepResult",
    "TraceKey",
    "TraceStore",
    "run_sweep",
]

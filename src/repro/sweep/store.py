"""Content-addressed on-disk trace store (the sweep's record-once cache).

Traces are artifacts: a recorded execution is a pure function of the
workload factory, its scale/thread parameters, the VM seed and the
fault plan — so a sweep that re-records an identical configuration is
wasting its wall clock.  The store addresses each recorded
:class:`~repro.core.events.EventBatch` by the SHA-256 digest of a
:class:`TraceKey` — ``(workload, scale, threads, vm_seed, fault-plan
digest, trace-format version)`` — and persists it in the crash-safe v2
binary format of :mod:`repro.core.tracefile`:

* **cold**: the sweep records the trace and :meth:`TraceStore.put`\\ s
  it (atomic temp-file + ``os.replace``, so a crashed writer can never
  leave a half-entry under the final name);
* **warm**: :meth:`TraceStore.get` loads it back via
  :func:`~repro.core.tracefile.scan_trace`, the per-section-CRC
  recovery scanner — a corrupt or truncated entry is treated as a
  *miss* (and counted), never as data.

Alongside each trace the store keeps two kinds of sidecars, all under
the same digest:

* ``.meta.json`` — recording metadata plus (optionally) per-tool replay
  measurements, so a fully-warm sweep can reuse measured numbers;
* ``.<kind>.shard.pkl`` — pickled profiler shards (a
  :class:`~repro.core.timestamping.DrmsProfiler` or
  :class:`~repro.core.rms.RmsProfiler` after
  ``begin_trace()``, i.e. shadow-free), version-tagged; an unreadable
  or version-mismatched shard is recomputed, not trusted.

Layout: ``root/<digest[:2]>/<digest>.trace`` (git-object-style fan-out
so a big sweep does not pile thousands of files into one directory).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.events import EventBatch
from repro.core.tracefile import (
    TRACE_FORMAT_VERSION,
    save_trace_binary,
    scan_trace,
)

__all__ = ["StoreAudit", "TraceKey", "TraceStore", "SHARD_VERSION"]

#: version tag baked into pickled profiler shards; bump when profiler
#: state layout changes so stale shards are recomputed instead of
#: unpickled into the wrong shape (3: per-thread partition cuts —
#: shards carry carry-in/carry-out summaries and six-field cold logs)
SHARD_VERSION = 3


@dataclass(frozen=True)
class TraceKey:
    """Cache key for one recorded execution.

    Every field that can change the recorded byte stream is part of the
    key; ``trace_version`` ties entries to the on-disk format so a
    format bump invalidates the whole store instead of mis-decoding it.
    ``vm_seed`` is reserved for seeded machine variants (the current VM
    is deterministic, so it is 0 today); ``fault_digest`` is
    :meth:`FaultPlan.digest() <repro.vm.faults.FaultPlan.digest>` or
    ``""`` for fault-free runs.
    """

    workload: str
    scale: int
    threads: int
    vm_seed: int = 0
    fault_digest: str = ""
    trace_version: int = TRACE_FORMAT_VERSION

    def digest(self) -> str:
        material = repr(
            (
                "repro-trace-key-v1",
                self.workload,
                self.scale,
                self.threads,
                self.vm_seed,
                self.fault_digest,
                self.trace_version,
            )
        )
        return hashlib.sha256(material.encode("utf-8")).hexdigest()


#: service test hooks (DESIGN.md §13): ``REPRO_SERVICE_TEST_KILL``
#: holds ``stage@worker`` entries; stage ``shard`` SIGKILLs the process
#: named by ``REPRO_SERVICE_WORKER`` halfway through writing a profiler
#: shard's temp file — a genuine torn write, which atomicity must turn
#: into "the final name never appeared".
_SERVICE_KILL_ENV = "REPRO_SERVICE_TEST_KILL"
_SERVICE_WORKER_ENV = "REPRO_SERVICE_WORKER"


def _maybe_torn_write_kill(path: str, handle, data: bytes) -> None:
    spec = os.environ.get(_SERVICE_KILL_ENV)
    worker = os.environ.get(_SERVICE_WORKER_ENV)
    if not spec or worker is None or not path.endswith(".shard.pkl"):
        return
    for item in spec.split(","):
        stage, _, target = item.strip().partition("@")
        if stage == "shard" and target in ("", worker):
            import signal

            handle.write(data[: max(1, len(data) // 2)])
            handle.flush()
            os.fsync(handle.fileno())
            os.kill(os.getpid(), signal.SIGKILL)


def _atomic_write(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically: temp file in the same
    directory, then ``os.replace`` — readers see the old entry or the
    complete new one, never a prefix."""
    directory = os.path.dirname(path)
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            _maybe_torn_write_kill(path, handle, data)
            handle.write(data)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


class TraceStore:
    """Content-addressed store of recorded traces and profiler shards.

    ``metrics`` (an optional :class:`repro.obs.MetricsRegistry`) gets
    ``sweep.cache.hits`` / ``sweep.cache.misses`` /
    ``sweep.cache.corrupt`` counters; the same numbers are always
    available as plain attributes (``hits``/``misses``/``corrupt``) for
    processes without a registry.
    """

    def __init__(self, root: str, metrics=None) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        #: sidecar reads (meta JSON / pickled shards) that failed for
        #: any reason other than the file being absent — counted, never
        #: raised: a truncated sidecar must cost a recompute, not a
        #: sweep abort
        self.sidecar_corrupt = 0
        #: well-formed shards rejected for a version/tag mismatch
        self.sidecar_stale = 0
        self.metrics = (
            metrics if metrics is not None and metrics.enabled else None
        )

    # -- paths --------------------------------------------------------------

    def _entry_dir(self, digest: str) -> str:
        return os.path.join(self.root, digest[:2])

    def trace_path(self, key: TraceKey) -> str:
        digest = key.digest()
        return os.path.join(self._entry_dir(digest), digest + ".trace")

    def meta_path(self, key: TraceKey) -> str:
        digest = key.digest()
        return os.path.join(self._entry_dir(digest), digest + ".meta.json")

    def shard_path(self, key: TraceKey, kind: str) -> str:
        digest = key.digest()
        return os.path.join(
            self._entry_dir(digest), f"{digest}.{kind}.shard.pkl"
        )

    # -- counters -----------------------------------------------------------

    def _note(self, outcome: str) -> None:
        if outcome == "hit":
            self.hits += 1
            if self.metrics is not None:
                self.metrics.counter("sweep.cache.hits").inc()
            return
        # a corrupt entry is a miss as far as the caller is concerned
        self.misses += 1
        if outcome == "corrupt":
            self.corrupt += 1
        if self.metrics is not None:
            self.metrics.counter("sweep.cache.misses").inc()
            if outcome == "corrupt":
                self.metrics.counter("sweep.cache.corrupt").inc()

    def _note_sidecar(self, kind: str, *, stale: bool = False) -> None:
        if stale:
            self.sidecar_stale += 1
            if self.metrics is not None:
                self.metrics.counter("sweep.cache.sidecar_stale").inc()
            return
        self.sidecar_corrupt += 1
        if self.metrics is not None:
            self.metrics.counter(
                "sweep.cache.sidecar_corrupt", {"kind": kind}
            ).inc()

    # -- traces -------------------------------------------------------------

    def get(self, key: TraceKey) -> Optional[EventBatch]:
        """Load the cached trace for ``key``, or ``None`` on a miss.

        The entry is decoded with the crash-safe scanner; anything less
        than a fully intact trace (bad magic, CRC mismatch, truncation)
        counts as ``corrupt`` and is reported as a miss — the sweep
        re-records rather than profiling salvaged prefixes, so cache
        contents can never silently change results.
        """
        path = self.trace_path(key)
        try:
            with open(path, "rb") as handle:
                scan = scan_trace(handle)
        except FileNotFoundError:
            self._note("miss")
            return None
        except OSError:
            self._note("corrupt")
            return None
        if not scan.intact or len(scan.batch) == 0:
            self._note("corrupt")
            return None
        self._note("hit")
        return scan.batch

    def put(
        self, key: TraceKey, batch: EventBatch, boundaries: tuple = ()
    ) -> str:
        """Persist ``batch`` under ``key`` (atomic); returns the entry
        path.  ``boundaries`` (execution-boundary row indices, as
        recorded by the VM) section-align the persisted payload so a
        warm partition replay sees the same depth-zero cut points a
        cold one does."""
        digest = key.digest()
        directory = self._entry_dir(digest)
        os.makedirs(directory, exist_ok=True)
        path = self.trace_path(key)
        _atomic_write(path, batch.to_bytes(boundaries=boundaries))
        return path

    def payload(self, key: TraceKey) -> Optional[bytes]:
        """Raw persisted trace bytes (``None`` if absent) — the exact
        section framing written by :meth:`put`, for consumers like the
        partition planner whose cut points follow section boundaries."""
        try:
            with open(self.trace_path(key), "rb") as fh:
                return fh.read()
        except OSError:
            return None

    def entry_bytes(self, key: TraceKey) -> int:
        """On-disk size of the trace entry (0 if absent)."""
        try:
            return os.path.getsize(self.trace_path(key))
        except OSError:
            return 0

    # -- metadata sidecar ---------------------------------------------------

    def get_meta(self, key: TraceKey) -> Optional[Dict[str, Any]]:
        """The entry's JSON sidecar, or ``None`` if absent/unreadable.

        Absent is normal (a fresh entry); anything else — truncated
        JSON, permission errors, a non-object payload — is a *counted*
        sidecar miss, never an exception: losing cached measurements
        must never abort a sweep.
        """
        try:
            with open(self.meta_path(key), "r") as handle:
                data = json.load(handle)
        except FileNotFoundError:
            return None
        except Exception:
            self._note_sidecar("meta")
            return None
        if not isinstance(data, dict):
            self._note_sidecar("meta")
            return None
        return data

    def put_meta(self, key: TraceKey, meta: Dict[str, Any]) -> None:
        digest = key.digest()
        os.makedirs(self._entry_dir(digest), exist_ok=True)
        payload = json.dumps(meta, indent=2, sort_keys=True, allow_nan=False)
        _atomic_write(self.meta_path(key), payload.encode("utf-8"))

    # -- profiler shards ----------------------------------------------------

    def get_shard(self, key: TraceKey, kind: str):
        """Unpickle the ``kind`` profiler shard for ``key``, or ``None``.

        Any failure — missing file, unpickling error, version-tag
        mismatch — yields ``None`` so the caller recomputes the shard
        from the trace; a cache can be deleted at any time without
        changing results.  Truncated/unparseable shards count as
        ``sidecar_corrupt``; well-formed shards with the wrong
        version/tag count as ``sidecar_stale``.
        """
        try:
            with open(self.shard_path(key, kind), "rb") as handle:
                payload = pickle.load(handle)
        except FileNotFoundError:
            return None
        except Exception:
            self._note_sidecar("shard")
            return None
        try:
            tag, version, stored_kind, shard = payload
        except (TypeError, ValueError):
            self._note_sidecar("shard")
            return None
        if tag != "repro-shard" or stored_kind != kind:
            self._note_sidecar("shard")
            return None
        if version != SHARD_VERSION:
            self._note_sidecar("shard", stale=True)
            return None
        return shard

    def put_shard(self, key: TraceKey, kind: str, shard) -> None:
        digest = key.digest()
        os.makedirs(self._entry_dir(digest), exist_ok=True)
        payload = pickle.dumps(
            ("repro-shard", SHARD_VERSION, kind, shard),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        _atomic_write(self.shard_path(key, kind), payload)

    # -- reporting ----------------------------------------------------------

    def stats(self) -> Dict[str, float]:
        """Hit/miss/corrupt counts plus the derived hit rate."""
        lookups = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "hit_rate": self.hits / lookups if lookups else 0.0,
        }

    def sidecar_stats(self) -> Dict[str, int]:
        """Sidecar (meta/shard) failure counts, kept separate from
        :meth:`stats` so existing consumers of that dict are
        undisturbed."""
        return {
            "sidecar_corrupt": self.sidecar_corrupt,
            "sidecar_stale": self.sidecar_stale,
        }

    # -- audit / recovery ---------------------------------------------------

    def audit(self) -> "StoreAudit":
        """Walk the whole store and classify every file.

        Used by ``repro doctor --store``: each trace is re-scanned with
        the crash-safe decoder, each meta sidecar is re-parsed, each
        shard is re-unpickled and version-checked, and sidecars whose
        trace entry is gone are flagged as orphans.  Leftover
        ``.tmp`` files (from writers killed before ``os.replace``) are
        reported too — they are harmless but worth sweeping.  The
        ``quarantine/`` subdirectory is skipped so repeated audits
        converge.
        """
        audit = StoreAudit(root=self.root)
        quarantine_dir = os.path.join(self.root, "quarantine")
        for dirpath, dirnames, filenames in os.walk(self.root):
            if os.path.abspath(dirpath).startswith(
                os.path.abspath(quarantine_dir)
            ):
                continue
            dirnames[:] = [d for d in dirnames if d != "quarantine"]
            traces_here = {
                name[: -len(".trace")]
                for name in filenames
                if name.endswith(".trace")
            }
            for name in sorted(filenames):
                path = os.path.join(dirpath, name)
                if name.endswith(".tmp"):
                    audit.tmp_files.append(path)
                    continue
                if name.endswith(".trace"):
                    audit.traces += 1
                    if not self._trace_intact(path):
                        audit.corrupt_traces.append(path)
                    continue
                if name.endswith(".meta.json"):
                    audit.metas += 1
                    digest = name[: -len(".meta.json")]
                    if digest not in traces_here:
                        audit.orphan_sidecars.append(path)
                    if not self._meta_intact(path):
                        audit.corrupt_metas.append(path)
                    continue
                if name.endswith(".shard.pkl"):
                    audit.shards += 1
                    digest = name.split(".", 1)[0]
                    if digest not in traces_here:
                        audit.orphan_sidecars.append(path)
                    verdict = self._shard_verdict(path)
                    if verdict == "corrupt":
                        audit.corrupt_shards.append(path)
                    elif verdict == "stale":
                        audit.stale_shards.append(path)
        return audit

    @staticmethod
    def _trace_intact(path: str) -> bool:
        try:
            with open(path, "rb") as handle:
                scan = scan_trace(handle)
        except OSError:
            return False
        return bool(scan.intact and len(scan.batch))

    @staticmethod
    def _meta_intact(path: str) -> bool:
        try:
            with open(path, "r") as handle:
                return isinstance(json.load(handle), dict)
        except Exception:
            return False

    @staticmethod
    def _shard_verdict(path: str) -> str:
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
            tag, version, _kind, _shard = payload
        except Exception:
            return "corrupt"
        if tag != "repro-shard":
            return "corrupt"
        if version != SHARD_VERSION:
            return "stale"
        return "ok"

    def quarantine(self, audit: "StoreAudit") -> List[str]:
        """Move every bad file from ``audit`` into ``root/quarantine/``.

        The move preserves the fan-out subdirectory (so two corrupt
        entries with the same digest prefix cannot collide) and is a
        plain ``os.replace`` — after recovery a re-run sweep sees clean
        misses and re-records.  Returns the quarantined paths, and
        also unlinks leftover ``.tmp`` files outright.
        """
        moved: List[str] = []
        quarantine_dir = os.path.join(self.root, "quarantine")
        for path in audit.bad_files():
            if not os.path.exists(path):
                continue
            rel = os.path.relpath(path, self.root)
            dest = os.path.join(quarantine_dir, rel)
            os.makedirs(os.path.dirname(dest), exist_ok=True)
            os.replace(path, dest)
            moved.append(dest)
        for path in audit.tmp_files:
            try:
                os.unlink(path)
            except OSError:
                pass
        return moved


@dataclass
class StoreAudit:
    """Result of :meth:`TraceStore.audit` — what's intact and what isn't."""

    root: str
    traces: int = 0
    metas: int = 0
    shards: int = 0
    corrupt_traces: List[str] = field(default_factory=list)
    corrupt_metas: List[str] = field(default_factory=list)
    corrupt_shards: List[str] = field(default_factory=list)
    stale_shards: List[str] = field(default_factory=list)
    orphan_sidecars: List[str] = field(default_factory=list)
    tmp_files: List[str] = field(default_factory=list)

    def bad_files(self) -> List[str]:
        """Every file :meth:`TraceStore.quarantine` should move
        (orphans included — a sidecar without its trace can only serve
        stale data)."""
        seen: Dict[str, None] = {}
        for group in (
            self.corrupt_traces,
            self.corrupt_metas,
            self.corrupt_shards,
            self.stale_shards,
            self.orphan_sidecars,
        ):
            for path in group:
                seen.setdefault(path)
        return list(seen)

    @property
    def clean(self) -> bool:
        return not (self.bad_files() or self.tmp_files)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "root": self.root,
            "traces": self.traces,
            "metas": self.metas,
            "shards": self.shards,
            "corrupt_traces": list(self.corrupt_traces),
            "corrupt_metas": list(self.corrupt_metas),
            "corrupt_shards": list(self.corrupt_shards),
            "stale_shards": list(self.stale_shards),
            "orphan_sidecars": list(self.orphan_sidecars),
            "tmp_files": list(self.tmp_files),
            "clean": self.clean,
        }

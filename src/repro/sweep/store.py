"""Content-addressed on-disk trace store (the sweep's record-once cache).

Traces are artifacts: a recorded execution is a pure function of the
workload factory, its scale/thread parameters, the VM seed and the
fault plan — so a sweep that re-records an identical configuration is
wasting its wall clock.  The store addresses each recorded
:class:`~repro.core.events.EventBatch` by the SHA-256 digest of a
:class:`TraceKey` — ``(workload, scale, threads, vm_seed, fault-plan
digest, trace-format version)`` — and persists it in the crash-safe v2
binary format of :mod:`repro.core.tracefile`:

* **cold**: the sweep records the trace and :meth:`TraceStore.put`\\ s
  it (atomic temp-file + ``os.replace``, so a crashed writer can never
  leave a half-entry under the final name);
* **warm**: :meth:`TraceStore.get` loads it back via
  :func:`~repro.core.tracefile.scan_trace`, the per-section-CRC
  recovery scanner — a corrupt or truncated entry is treated as a
  *miss* (and counted), never as data.

Alongside each trace the store keeps two kinds of sidecars, all under
the same digest:

* ``.meta.json`` — recording metadata plus (optionally) per-tool replay
  measurements, so a fully-warm sweep can reuse measured numbers;
* ``.<kind>.shard.pkl`` — pickled profiler shards (a
  :class:`~repro.core.timestamping.DrmsProfiler` or
  :class:`~repro.core.rms.RmsProfiler` after
  ``begin_trace()``, i.e. shadow-free), version-tagged; an unreadable
  or version-mismatched shard is recomputed, not trusted.

Layout: ``root/<digest[:2]>/<digest>.trace`` (git-object-style fan-out
so a big sweep does not pile thousands of files into one directory).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.core.events import EventBatch
from repro.core.tracefile import (
    TRACE_FORMAT_VERSION,
    save_trace_binary,
    scan_trace,
)

__all__ = ["TraceKey", "TraceStore", "SHARD_VERSION"]

#: version tag baked into pickled profiler shards; bump when profiler
#: state layout changes so stale shards are recomputed instead of
#: unpickled into the wrong shape
SHARD_VERSION = 2


@dataclass(frozen=True)
class TraceKey:
    """Cache key for one recorded execution.

    Every field that can change the recorded byte stream is part of the
    key; ``trace_version`` ties entries to the on-disk format so a
    format bump invalidates the whole store instead of mis-decoding it.
    ``vm_seed`` is reserved for seeded machine variants (the current VM
    is deterministic, so it is 0 today); ``fault_digest`` is
    :meth:`FaultPlan.digest() <repro.vm.faults.FaultPlan.digest>` or
    ``""`` for fault-free runs.
    """

    workload: str
    scale: int
    threads: int
    vm_seed: int = 0
    fault_digest: str = ""
    trace_version: int = TRACE_FORMAT_VERSION

    def digest(self) -> str:
        material = repr(
            (
                "repro-trace-key-v1",
                self.workload,
                self.scale,
                self.threads,
                self.vm_seed,
                self.fault_digest,
                self.trace_version,
            )
        )
        return hashlib.sha256(material.encode("utf-8")).hexdigest()


def _atomic_write(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically: temp file in the same
    directory, then ``os.replace`` — readers see the old entry or the
    complete new one, never a prefix."""
    directory = os.path.dirname(path)
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


class TraceStore:
    """Content-addressed store of recorded traces and profiler shards.

    ``metrics`` (an optional :class:`repro.obs.MetricsRegistry`) gets
    ``sweep.cache.hits`` / ``sweep.cache.misses`` /
    ``sweep.cache.corrupt`` counters; the same numbers are always
    available as plain attributes (``hits``/``misses``/``corrupt``) for
    processes without a registry.
    """

    def __init__(self, root: str, metrics=None) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.metrics = (
            metrics if metrics is not None and metrics.enabled else None
        )

    # -- paths --------------------------------------------------------------

    def _entry_dir(self, digest: str) -> str:
        return os.path.join(self.root, digest[:2])

    def trace_path(self, key: TraceKey) -> str:
        digest = key.digest()
        return os.path.join(self._entry_dir(digest), digest + ".trace")

    def meta_path(self, key: TraceKey) -> str:
        digest = key.digest()
        return os.path.join(self._entry_dir(digest), digest + ".meta.json")

    def shard_path(self, key: TraceKey, kind: str) -> str:
        digest = key.digest()
        return os.path.join(
            self._entry_dir(digest), f"{digest}.{kind}.shard.pkl"
        )

    # -- counters -----------------------------------------------------------

    def _note(self, outcome: str) -> None:
        if outcome == "hit":
            self.hits += 1
            if self.metrics is not None:
                self.metrics.counter("sweep.cache.hits").inc()
            return
        # a corrupt entry is a miss as far as the caller is concerned
        self.misses += 1
        if outcome == "corrupt":
            self.corrupt += 1
        if self.metrics is not None:
            self.metrics.counter("sweep.cache.misses").inc()
            if outcome == "corrupt":
                self.metrics.counter("sweep.cache.corrupt").inc()

    # -- traces -------------------------------------------------------------

    def get(self, key: TraceKey) -> Optional[EventBatch]:
        """Load the cached trace for ``key``, or ``None`` on a miss.

        The entry is decoded with the crash-safe scanner; anything less
        than a fully intact trace (bad magic, CRC mismatch, truncation)
        counts as ``corrupt`` and is reported as a miss — the sweep
        re-records rather than profiling salvaged prefixes, so cache
        contents can never silently change results.
        """
        path = self.trace_path(key)
        try:
            with open(path, "rb") as handle:
                scan = scan_trace(handle)
        except FileNotFoundError:
            self._note("miss")
            return None
        except OSError:
            self._note("corrupt")
            return None
        if not scan.intact or len(scan.batch) == 0:
            self._note("corrupt")
            return None
        self._note("hit")
        return scan.batch

    def put(self, key: TraceKey, batch: EventBatch) -> str:
        """Persist ``batch`` under ``key`` (atomic); returns the entry
        path."""
        digest = key.digest()
        directory = self._entry_dir(digest)
        os.makedirs(directory, exist_ok=True)
        path = self.trace_path(key)
        _atomic_write(path, batch.to_bytes())
        return path

    def entry_bytes(self, key: TraceKey) -> int:
        """On-disk size of the trace entry (0 if absent)."""
        try:
            return os.path.getsize(self.trace_path(key))
        except OSError:
            return 0

    # -- metadata sidecar ---------------------------------------------------

    def get_meta(self, key: TraceKey) -> Optional[Dict[str, Any]]:
        """The entry's JSON sidecar, or ``None`` if absent/unreadable."""
        try:
            with open(self.meta_path(key), "r") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            return None
        return data if isinstance(data, dict) else None

    def put_meta(self, key: TraceKey, meta: Dict[str, Any]) -> None:
        digest = key.digest()
        os.makedirs(self._entry_dir(digest), exist_ok=True)
        payload = json.dumps(meta, indent=2, sort_keys=True, allow_nan=False)
        _atomic_write(self.meta_path(key), payload.encode("utf-8"))

    # -- profiler shards ----------------------------------------------------

    def get_shard(self, key: TraceKey, kind: str):
        """Unpickle the ``kind`` profiler shard for ``key``, or ``None``.

        Any failure — missing file, unpickling error, version-tag
        mismatch — yields ``None`` so the caller recomputes the shard
        from the trace; a cache can be deleted at any time without
        changing results.
        """
        try:
            with open(self.shard_path(key, kind), "rb") as handle:
                tag, version, stored_kind, shard = pickle.load(handle)
        except Exception:
            return None
        if tag != "repro-shard" or version != SHARD_VERSION or stored_kind != kind:
            return None
        return shard

    def put_shard(self, key: TraceKey, kind: str, shard) -> None:
        digest = key.digest()
        os.makedirs(self._entry_dir(digest), exist_ok=True)
        payload = pickle.dumps(
            ("repro-shard", SHARD_VERSION, kind, shard),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        _atomic_write(self.shard_path(key, kind), payload)

    # -- reporting ----------------------------------------------------------

    def stats(self) -> Dict[str, float]:
        """Hit/miss/corrupt counts plus the derived hit rate."""
        lookups = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "hit_rate": self.hits / lookups if lookups else 0.0,
        }

"""Sharded repro sweep: the workload × tool × scale matrix, cached.

The paper's evaluation is a full matrix — every workload, at several
input scales, replayed under every tool.  This engine runs that matrix
as independent *cells* ``(workload, scale)``:

* each cell records its trace **once** into the content-addressed
  :class:`~repro.sweep.store.TraceStore` (or loads it back on a warm
  run via the crash-safe scanner), replays it under the requested
  tools, and profiles it into one drms shard and one rms shard —
  profiler snapshots taken at an execution boundary
  (:meth:`~repro.core.timestamping.DrmsProfiler.begin_trace`), so they
  are small, picklable and exactly mergeable;
* cells run process-parallel under the same supervision discipline as
  the replay runner — per-future timeouts, bounded retries with
  jittered exponential backoff (private RNG: supervision never touches
  the global ``random`` stream), serial fallback, and exclusion with a
  structured :class:`~repro.tools.runner.Degradation` record as the
  last resort;
* per workload, the per-scale shards are reduced with the associative
  :meth:`~repro.core.timestamping.DrmsProfiler.merge` and the merged
  worst-case cost plots are classified with
  :func:`~repro.analysis.costfunc.classify_trend` /
  :func:`~repro.analysis.costfunc.best_fit` — the per-routine empirical
  cost models the sweep exists to produce, on both the drms and the rms
  metric (their disagreement is the paper's headline figure).

Replay *measurements* are also cached in the entry's meta sidecar: a
fully-warm sweep reuses the stored per-tool numbers (marked
``"source": "cache"`` in the report) instead of re-measuring identical
byte streams; pass ``reuse_measurements=False`` to force re-measuring.
"""

from __future__ import annotations

import os
import random
import time
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.costfunc import classify_trend
from repro.core.events import fuse_batch
from repro.core.rms import RmsProfiler
from repro.core.timestamping import DrmsProfiler
from repro.sweep.store import TraceKey, TraceStore
from repro.tools.pool import active_segments, get_pool, pool_stats
from repro.tools.runner import (
    DEFAULT_ENGINE,
    DEFAULT_TOOLS,
    ENGINES,
    Degradation,
    record_trace,
    replay_tool,
)
from repro.workloads.registry import get_workload

__all__ = [
    "CellTask",
    "SweepCell",
    "SweepConfig",
    "SweepResult",
    "merge_store_profiles",
    "run_cell",
    "run_sweep",
]

#: ceiling on the inter-retry backoff sleep, seconds
_MAX_BACKOFF = 5.0

#: jitter pacing only — deliberately not the global ``random`` stream
_jitter_rng = random.Random()


@dataclass(frozen=True)
class SweepCell:
    """One cell of the sweep matrix."""

    workload: str
    scale: int
    threads: int

    @property
    def id(self) -> str:
        return f"{self.workload}@s{self.scale}"


@dataclass(frozen=True)
class SweepConfig:
    """Everything that defines a sweep run.

    ``tools`` are names from
    :data:`~repro.tools.runner.DEFAULT_TOOLS`; ``fault_seed`` attaches
    a fresh :class:`~repro.vm.faults.FaultPlan` per recording (and is
    part of the cache key via the plan digest).
    """

    workloads: Tuple[str, ...]
    scales: Tuple[int, ...]
    store_root: str
    threads: int = 4
    tools: Tuple[str, ...] = tuple(DEFAULT_TOOLS)
    repeats: int = 1
    engine: str = DEFAULT_ENGINE
    parallel: Optional[int] = None
    #: intra-cell partitioned replay: cut each cell's trace at depth-zero
    #: section boundaries and replay the ranges in parallel (``0`` =
    #: one per CPU, ``None`` = off).  Per-partition profiler shards are
    #: cached individually in the store, so a warm sweep re-merges them
    #: instead of re-replaying.
    partitions: Optional[int] = None
    fault_seed: Optional[int] = None
    replay_timeout: float = 300.0
    max_retries: int = 2
    backoff_base: float = 0.25
    reuse_measurements: bool = True

    def validate(self) -> None:
        if not self.workloads:
            raise ValueError("sweep needs at least one workload")
        if not self.scales:
            raise ValueError("sweep needs at least one scale")
        if any(scale < 1 for scale in self.scales):
            raise ValueError("scales must be >= 1")
        if self.repeats < 1:
            raise ValueError("repeats must be >= 1")
        if self.parallel is not None and self.parallel < 1:
            raise ValueError("parallel must be >= 1")
        if self.partitions is not None and self.partitions < 0:
            raise ValueError("partitions must be >= 0")
        if self.replay_timeout <= 0:
            raise ValueError("replay_timeout must be > 0")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        unknown = [t for t in self.tools if t not in DEFAULT_TOOLS]
        if unknown:
            raise ValueError(f"unknown tools: {', '.join(unknown)}")
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; expected one of "
                f"{', '.join(ENGINES)}"
            )

    def cells(self) -> List[SweepCell]:
        return [
            SweepCell(workload, scale, self.threads)
            for workload in self.workloads
            for scale in self.scales
        ]

    def cell_task(self, cell: SweepCell) -> "CellTask":
        """The self-contained work unit for one cell of this sweep."""
        return CellTask(
            cell=cell,
            store_root=self.store_root,
            tools=self.tools,
            repeats=self.repeats,
            fault_seed=self.fault_seed,
            reuse_measurements=self.reuse_measurements,
            engine=self.engine,
            partitions=self.partitions,
        )


@dataclass(frozen=True)
class CellTask:
    """One self-contained unit of sweep work.

    Everything :func:`run_cell` needs, picklable (process pools) and
    JSON-round-trippable (the service's lease responses) — this is the
    shape a :class:`~repro.service.coordinator.Coordinator` hands to a
    leased worker, and what the in-process pool ships too.
    """

    cell: SweepCell
    store_root: str
    tools: Tuple[str, ...]
    repeats: int = 1
    fault_seed: Optional[int] = None
    reuse_measurements: bool = True
    engine: str = DEFAULT_ENGINE
    partitions: Optional[int] = None
    #: distributed trace context (a TraceContext.to_dict()), or None;
    #: a plain dict so the frozen dataclass stays hashable-free/picklable
    #: and the wire form needs no extra serialisation
    trace: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "workload": self.cell.workload,
            "scale": self.cell.scale,
            "threads": self.cell.threads,
            "store_root": self.store_root,
            "tools": list(self.tools),
            "repeats": self.repeats,
            "fault_seed": self.fault_seed,
            "reuse_measurements": self.reuse_measurements,
            "engine": self.engine,
            "partitions": self.partitions,
            "trace": self.trace,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CellTask":
        return cls(
            cell=SweepCell(
                data["workload"], int(data["scale"]), int(data["threads"])
            ),
            store_root=data["store_root"],
            tools=tuple(data["tools"]),
            repeats=int(data.get("repeats", 1)),
            fault_seed=data.get("fault_seed"),
            reuse_measurements=bool(data.get("reuse_measurements", True)),
            engine=data.get("engine", DEFAULT_ENGINE),
            partitions=data.get("partitions"),
            trace=data.get("trace"),
        )


def run_cell(task: CellTask) -> Dict[str, Any]:
    """Process one cell end to end — the worker-loop entry point.

    Callable from a pool worker, a service worker across the HTTP wire,
    or inline; idempotent by construction (every artifact lands in the
    content-addressed store via atomic writes), so re-running a task
    after a crash or lost lease converges on byte-identical state.
    """
    return _run_cell(
        task.cell,
        task.store_root,
        task.tools,
        task.repeats,
        task.fault_seed,
        task.reuse_measurements,
        task.engine,
        task.partitions,
        trace=task.trace,
    )


def merge_store_profiles(
    store_root: str,
    workloads: Sequence[str],
    scales: Sequence[int],
    *,
    threads: int = 4,
    fault_seed: Optional[int] = None,
    only_cells: Optional[Sequence[str]] = None,
) -> Tuple[Dict[str, Dict[str, Any]], List[str]]:
    """Merge per-cell profiler shards straight from a store.

    Cells merge in the canonical sweep order (workload-major,
    scale-minor), so the result is byte-comparable with a serial
    :func:`run_sweep` regardless of the order cells were *completed*
    in — the property the service's kill-anywhere tests pin.  Returns
    ``(merged, missing)`` where ``merged`` maps workload →
    ``{"drms", "rms"}`` profilers and ``missing`` lists cell ids whose
    shards were absent or unreadable.
    """
    store = TraceStore(store_root)
    wanted = set(only_cells) if only_cells is not None else None
    merged: Dict[str, Dict[str, Any]] = {}
    missing: List[str] = []
    for workload in workloads:
        for scale in scales:
            cell = SweepCell(workload, scale, threads)
            if wanted is not None and cell.id not in wanted:
                continue
            key = _cell_key(cell, fault_seed)
            drms = store.get_shard(key, "drms")
            rms = store.get_shard(key, "rms")
            if drms is None or rms is None:
                missing.append(cell.id)
                continue
            if workload in merged:
                merged[workload]["drms"].merge(drms)
                merged[workload]["rms"].merge(rms)
            else:
                merged[workload] = {"drms": drms, "rms": rms}
    return merged, missing


def _cell_key(cell: SweepCell, fault_seed: Optional[int]) -> TraceKey:
    if fault_seed is None:
        fault_digest = ""
    else:
        from repro.vm.faults import FaultPlan

        fault_digest = FaultPlan(seed=fault_seed).digest()
    return TraceKey(
        workload=cell.workload,
        scale=cell.scale,
        threads=cell.threads,
        fault_digest=fault_digest,
    )


def _cell_builder(cell: SweepCell, fault_seed: Optional[int]):
    workload = get_workload(cell.workload)

    def build():
        machine = workload.build(threads=cell.threads, scale=cell.scale)
        if fault_seed is not None:
            # Fresh plan per build: decisions are a pure function of
            # (seed, decision index), so every build sees the identical
            # fault schedule — and so does the cache key.
            from repro.vm.faults import FaultPlan

            machine.set_fault_plan(FaultPlan(seed=fault_seed))
        return machine

    return build


def _run_cell(
    cell: SweepCell,
    store_root: str,
    tools: Tuple[str, ...],
    repeats: int,
    fault_seed: Optional[int],
    reuse_measurements: bool,
    engine: str = DEFAULT_ENGINE,
    partitions: Optional[int] = None,
    trace: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Process one sweep cell end to end (pool worker entry point, also
    called inline for serial runs and fallbacks).  Returns a picklable
    payload; the profiler shards inside it are shadow-free
    (``begin_trace()``), so shipping them back is cheap."""
    start = time.perf_counter()
    store = TraceStore(store_root)
    key = _cell_key(cell, fault_seed)

    batch = store.get(key)
    cached = batch is not None
    record_time = 0.0
    if batch is None:
        record_time, batch, _machine = record_trace(
            _cell_builder(cell, fault_seed)
        )
        # Boundary-aligned persistence: the planner's depth-zero cut
        # points survive the cache round-trip.
        store.put(key, batch, boundaries=_machine.trace_boundaries)

    meta = store.get_meta(key) or {}
    meta.setdefault("workload", cell.workload)
    meta.setdefault("scale", cell.scale)
    meta.setdefault("threads", cell.threads)
    meta.setdefault("events", len(batch))
    stored_replays = meta.get("replays") or {}

    # Fuse once per cell, outside every timed region: the columnar
    # replays and the columnar shard profiling below share the result.
    fused = fuse_batch(batch) if engine == "columnar" else None

    replays: Dict[str, Dict[str, Any]] = {}
    measured_any = False
    for name in tools:
        entry = stored_replays.get(name) if reuse_measurements else None
        if (
            isinstance(entry, dict)
            and entry.get("repeats") == repeats
            # Metas written before engines existed measured the batched
            # path; cached numbers are only comparable within one engine.
            and entry.get("engine", "batched") == engine
            and isinstance(entry.get("seconds"), float)
        ):
            replays[name] = {
                "seconds": entry["seconds"],
                "space_cells": entry["space_cells"],
                "source": "cache",
            }
            continue
        seconds, space = replay_tool(
            DEFAULT_TOOLS[name], batch, repeats, engine=engine, fused=fused
        )
        replays[name] = {
            "seconds": seconds,
            "space_cells": space,
            "source": "measured",
        }
        stored_replays[name] = {
            "seconds": seconds,
            "space_cells": space,
            "repeats": repeats,
            "engine": engine,
        }
        measured_any = True
    if measured_any or not cached:
        meta["replays"] = stored_replays
        store.put_meta(key, meta)

    drms = rms = None
    cell_partitions: Optional[int] = None
    shard_bytes: Dict[str, int] = {"trace": store.entry_bytes(key)}
    if partitions is not None:
        # Intra-trace partitioned replay (PR 6; per-thread cuts PR 9):
        # cut the cell's trace at section boundaries — depth-zero where
        # available, mid-activation with carries otherwise — and make
        # the *per-partition* shard the cache unit: a warm sweep
        # re-merges cached partition shards (exact and cheap) instead
        # of re-replaying the trace.
        from repro.core.tracefile import plan_partitions
        from repro.tools.partition import (
            merge_partition_shards,
            replay_partitioned,
            resolve_partitions,
        )

        # Use the persisted payload when there is one: its section
        # framing carries the recorded execution boundaries, which a
        # fresh default to_bytes() would drop.
        payload = store.payload(key) or batch.to_bytes()
        plan = plan_partitions(payload, resolve_partitions(partitions))
        cell_partitions = len(plan.partitions)
        if cell_partitions > 1:
            n = cell_partitions
            rows: Dict[int, list] = {}
            for part in plan.partitions:
                row = [
                    store.get_shard(key, f"{kind}.p{part.index}of{n}")
                    for kind in ("drms", "rms")
                ]
                if all(s is not None for s in row):
                    rows[part.index] = row
            missing = [
                p.index for p in plan.partitions if p.index not in rows
            ]
            shards_cached = not missing
            if missing:
                rep = replay_partitioned(
                    payload,
                    plan=plan,
                    kinds=("drms", "rms"),
                    engine=engine,
                    only=missing,
                    merge=False,
                    trace=trace,
                )
                for row in rep.shards:
                    # Store pristine shards *before* merging: the merge
                    # below mutates the profilers in place.
                    for shard in row:
                        store.put_shard(
                            key, f"{shard.kind}.p{shard.index}of{n}", shard
                        )
                    rows[row[0].index] = row
            merged = merge_partition_shards([rows[i] for i in sorted(rows)])
            drms = merged["drms"]
            rms = merged["rms"]
            # Publish the merged result under the plain shard keys too:
            # store-level consumers (service job reports,
            # merge_store_profiles) read those without needing the
            # partition plan.  The partitioned warm path above still
            # re-merges from the per-partition shards.
            store.put_shard(key, "drms", drms)
            store.put_shard(key, "rms", rms)
            for kind in ("drms", "rms"):
                shard_bytes[kind] = sum(
                    os.path.getsize(store.shard_path(key, f"{kind}.p{i}of{n}"))
                    for i in range(n)
                )
    if drms is None:
        drms = store.get_shard(key, "drms")
        rms = store.get_shard(key, "rms")
        shards_cached = drms is not None and rms is not None
        if not shards_cached:
            # Shards are engine-invariant (property-tested): the columnar
            # kernel only changes how fast we get to the identical
            # profile.
            drms = DrmsProfiler(keep_activations=False)
            rms = RmsProfiler(keep_activations=False)
            if fused is not None:
                drms.consume_columnar(fused)
                rms.consume_columnar(fused)
            else:
                drms.consume_batch(batch)
                rms.consume_batch(batch)
            drms.begin_trace()
            rms.begin_trace()
            store.put_shard(key, "drms", drms)
            store.put_shard(key, "rms", rms)
        shard_bytes["drms"] = os.path.getsize(store.shard_path(key, "drms"))
        shard_bytes["rms"] = os.path.getsize(store.shard_path(key, "rms"))

    return {
        "cell": cell,
        "cached": cached,
        "shards_cached": shards_cached,
        "corrupt": store.corrupt,
        "record_time": record_time,
        "events": len(batch),
        "partitions": cell_partitions,
        "replays": replays,
        "shard_bytes": shard_bytes,
        "wall_time": time.perf_counter() - start,
        "drms": drms,
        "rms": rms,
    }


def _run_cells_supervised(
    cells: List[SweepCell],
    config: SweepConfig,
    workers: int,
) -> Tuple[Dict[SweepCell, Dict[str, Any]], List[Degradation]]:
    """Run the cells in worker processes under the runner's supervision
    discipline.  Cells the pool cannot finish fall back to inline
    execution; a cell failing even inline is excluded with a
    Degradation.  Never raises, never hangs.  Returns
    ``(payloads, degradations, attempts)`` — the attempts map feeds the
    per-cell retry provenance in the report."""
    payloads: Dict[SweepCell, Dict[str, Any]] = {}
    degradations: List[Degradation] = []
    attempts = {cell: 0 for cell in cells}
    pending = list(cells)
    round_no = 0
    while pending and round_no <= config.max_retries:
        round_no += 1
        if round_no > 1:
            delay = config.backoff_base * 2.0 ** (round_no - 2)
            delay = min(
                delay + _jitter_rng.uniform(0, config.backoff_base),
                _MAX_BACKOFF,
            )
            time.sleep(delay)
        try:
            # One process-wide warm pool serves every retry round, every
            # cell, and (via the runner) every partition inside a cell —
            # workers stay resident across the whole sweep.
            pool = get_pool()
            pool.ensure(min(workers, len(pending)))
            futures = {
                cell: pool.submit(run_cell, config.cell_task(cell))
                for cell in pending
            }
        except Exception as exc:  # no fork/spawn available at all
            for cell in pending:
                degradations.append(
                    Degradation(
                        "parallel-sweep",
                        cell.id,
                        attempts[cell] + 1,
                        f"pool unavailable: {type(exc).__name__}: {exc}",
                        "serial-fallback",
                    )
                )
            return payloads, degradations, attempts
        stuck = False
        still_pending: List[SweepCell] = []
        for cell, future in futures.items():
            try:
                payload = future.result(timeout=config.replay_timeout)
                payload["attempts"] = attempts[cell] + 1
                payload["completed_by"] = "pool"
                payloads[cell] = payload
            except FutureTimeoutError:
                attempts[cell] += 1
                stuck = True
                exhausted = attempts[cell] > config.max_retries
                if not exhausted:
                    still_pending.append(cell)
                degradations.append(
                    Degradation(
                        "parallel-sweep",
                        cell.id,
                        attempts[cell],
                        f"cell exceeded {config.replay_timeout:g}s timeout",
                        "serial-fallback" if exhausted else "retried",
                    )
                )
            except BrokenProcessPool as exc:
                attempts[cell] += 1
                exhausted = attempts[cell] > config.max_retries
                if not exhausted:
                    still_pending.append(cell)
                degradations.append(
                    Degradation(
                        "parallel-sweep",
                        cell.id,
                        attempts[cell],
                        f"worker pool broke: {exc}",
                        "serial-fallback" if exhausted else "retried",
                    )
                )
            except Exception as exc:
                # Deterministic failure: a process retry cannot help.
                degradations.append(
                    Degradation(
                        "parallel-sweep",
                        cell.id,
                        attempts[cell] + 1,
                        f"{type(exc).__name__}: {exc}",
                        "serial-fallback",
                    )
                )
        if stuck:
            # Wedged worker: kill the processes; the next round's
            # ensure() respawns.  Otherwise the pool stays warm.
            pool.terminate()
        pending = still_pending
    return payloads, degradations, attempts


def run_sweep(config: SweepConfig, metrics=None, tracer=None) -> "SweepResult":
    """Execute the sweep matrix and aggregate the merged cost models.

    ``metrics`` (a :class:`repro.obs.MetricsRegistry`) receives
    ``sweep.cache.*`` counters and per-sweep gauges; ``tracer`` (a
    :class:`repro.obs.SpanTracer`) gets one span per phase plus one per
    serially-executed cell.  Both default to off.
    """
    config.validate()
    for name in config.workloads:
        get_workload(name)  # unknown workloads fail before any work
    if tracer is None:
        from repro.obs import NULL_TRACER

        tracer = NULL_TRACER

    start = time.perf_counter()
    cells = config.cells()
    payloads: Dict[SweepCell, Dict[str, Any]] = {}
    degradations: List[Degradation] = []
    pool_before = pool_stats()

    supervised = config.parallel is not None and config.parallel > 1
    attempts: Dict[SweepCell, int] = {cell: 0 for cell in cells}
    with tracer.span(
        "sweep-cells",
        track="sweep",
        cells=len(cells),
        mode="parallel" if supervised else "serial",
    ):
        if supervised:
            payloads, degradations, attempts = _run_cells_supervised(
                cells, config, config.parallel
            )
        for cell in cells:
            if cell in payloads:
                continue
            # Serial execution: the primary path without workers, the
            # graceful fallback with them.  A cell failing here is
            # excluded rather than aborting the sweep — unless the whole
            # run is serial, where the old hard-error contract holds.
            try:
                with tracer.span("cell", track="sweep", cell=cell.id):
                    payload = run_cell(config.cell_task(cell))
                payload["attempts"] = attempts.get(cell, 0) + 1
                payload["completed_by"] = "inline"
                payloads[cell] = payload
            except Exception as exc:
                if not supervised:
                    raise
                degradations.append(
                    Degradation(
                        "serial-sweep",
                        cell.id,
                        1,
                        f"{type(exc).__name__}: {exc}",
                        "excluded",
                    )
                )

    with tracer.span("sweep-merge", track="sweep"):
        merged_drms: Dict[str, DrmsProfiler] = {}
        merged_rms: Dict[str, RmsProfiler] = {}
        for cell in cells:
            payload = payloads.get(cell)
            if payload is None:
                continue
            name = cell.workload
            if name in merged_drms:
                merged_drms[name].merge(payload["drms"])
                merged_rms[name].merge(payload["rms"])
            else:
                merged_drms[name] = payload["drms"]
                merged_rms[name] = payload["rms"]
        trends = {
            name: {
                "drms": _routine_trends(merged_drms[name]),
                "rms": _routine_trends(merged_rms[name]),
            }
            for name in merged_drms
        }

    wall_time = time.perf_counter() - start
    pool_after = pool_stats()
    pool_report = {
        "workers": pool_after["workers"],
        "spawns": pool_after["spawns"] - pool_before["spawns"],
        "respawns_broken": (
            pool_after["respawns_broken"] - pool_before["respawns_broken"]
        ),
        "tasks": pool_after["tasks"] - pool_before["tasks"],
        # submissions that rode an already-warm executor: the whole
        # point of hoisting pool lifetime to sweep scope
        "tasks_reused": (
            pool_after["tasks_reused"] - pool_before["tasks_reused"]
        ),
        # sampled after all cells finished — anything nonzero is a leak
        "shm_segments_active": active_segments(),
    }
    result = SweepResult(
        config=config,
        cells=[payloads[cell] for cell in cells if cell in payloads],
        trends=trends,
        degradations=degradations,
        wall_time=wall_time,
        pool=pool_report,
    )
    if metrics is not None and metrics.enabled:
        cache = result.cache_stats()
        metrics.counter("sweep.cache.hits").value += cache["hits"]
        metrics.counter("sweep.cache.misses").value += cache["misses"]
        metrics.counter("sweep.cache.corrupt").value += cache["corrupt"]
        metrics.gauge("sweep.cells").set(len(result.cells))
        metrics.gauge("sweep.wall_us").set(int(wall_time * 1e6))
        metrics.gauge("pool.workers").set(pool_report["workers"])
        metrics.gauge("pool.tasks_reused").set(pool_report["tasks_reused"])
        metrics.gauge("shm.segments_active").set(
            pool_report["shm_segments_active"]
        )
        for degradation in degradations:
            metrics.counter(
                "sweep.degradations",
                {"stage": degradation.stage, "action": degradation.action},
            ).inc()
    return result


def _routine_trends(profiler) -> Dict[str, Dict[str, Any]]:
    """Classify the merged worst-case cost plot of every routine.

    Routines whose merged plot still has a single distinct input size
    get no model (``model: null`` in the report) — that is the
    profile-richness story of Section 4.1, not an error.
    """
    out: Dict[str, Dict[str, Any]] = {}
    for routine, profile in sorted(profiler.profiles.by_routine().items()):
        plot = profile.worst_case_plot()
        entry: Dict[str, Any] = {
            "calls": profile.calls,
            "points": len(plot),
            "model": None,
            "r_squared": None,
            "exponent": None,
        }
        if len(plot) >= 2:
            entry.update(classify_trend(plot))
        out[routine] = entry
    return out


@dataclass
class SweepResult:
    """Everything a sweep produced, reportable as strict JSON."""

    config: SweepConfig
    cells: List[Dict[str, Any]] = field(default_factory=list)
    trends: Dict[str, Dict[str, Dict[str, Any]]] = field(default_factory=dict)
    degradations: List[Degradation] = field(default_factory=list)
    wall_time: float = 0.0
    #: warm-pool reuse over this sweep (deltas of the process-global
    #: :func:`repro.tools.pool.pool_stats` across the run)
    pool: Dict[str, int] = field(default_factory=dict)

    def cache_stats(self) -> Dict[str, float]:
        hits = sum(1 for p in self.cells if p["cached"])
        misses = len(self.cells) - hits
        corrupt = sum(p["corrupt"] for p in self.cells)
        lookups = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "corrupt": corrupt,
            "hit_rate": hits / lookups if lookups else 0.0,
        }

    @property
    def excluded_cells(self) -> List[str]:
        return sorted(
            {d.tool for d in self.degradations if d.action == "excluded"}
        )

    def report_dict(self) -> Dict[str, Any]:
        """JSON-serialisable report (pass through
        :func:`repro.core.serialize.dumps_strict`: degenerate trends
        carry ``nan`` exponents)."""
        return {
            "format": "repro-sweep",
            "version": 1,
            "workloads": list(self.config.workloads),
            "scales": list(self.config.scales),
            "threads": self.config.threads,
            "tools": list(self.config.tools),
            "repeats": self.config.repeats,
            "engine": self.config.engine,
            "parallel": self.config.parallel,
            "partitions": self.config.partitions,
            "faults": self.config.fault_seed,
            "reuse_measurements": self.config.reuse_measurements,
            "wall_time": self.wall_time,
            "cache": self.cache_stats(),
            "pool": dict(self.pool),
            "cells": [
                {
                    "workload": p["cell"].workload,
                    "scale": p["cell"].scale,
                    "threads": p["cell"].threads,
                    "cached": p["cached"],
                    "shards_cached": p["shards_cached"],
                    # retry/requeue provenance: which attempt finally
                    # finished the cell, and where it ran — degraded
                    # runs are auditable from the report alone.
                    "attempts": p.get("attempts", 1),
                    "completed_by": p.get("completed_by", "inline"),
                    "record_time": p["record_time"],
                    "events": p["events"],
                    "partitions": p.get("partitions"),
                    "wall_time": p["wall_time"],
                    "shard_bytes": dict(p["shard_bytes"]),
                    "replays": {
                        tool: dict(row)
                        for tool, row in p["replays"].items()
                    },
                }
                for p in self.cells
            ],
            "trends": self.trends,
            "excluded": self.excluded_cells,
            "degradations": [
                {
                    "stage": d.stage,
                    "cell": d.tool,
                    "attempt": d.attempt,
                    "reason": d.reason,
                    "action": d.action,
                }
                for d in self.degradations
            ],
        }
